// Crash-safe epoch journal: an append-only, checksummed write-ahead log
// that makes settlement atomic across daemon restarts.
//
// Per epoch the service appends up to three records:
//
//   BEGIN(epoch, pre_digest)          queue drained, capacities locked
//   OUTCOME(epoch, pre_digest, bytes) the cleared outcome, fsync'd
//                                     *before* apply_outcome runs
//   SETTLED(epoch, post_digest)       settlement reached the network
//
// plus ABORTED(epoch, pre_digest) when the mechanism throws and the
// service released the locks instead of settling, and
// DEGRADED(epoch, pre_digest, level + reason) each time the epoch
// deadline expired and the service retried the same epoch one rung down
// the degradation ladder (DESIGN.md §14) — zero or more DEGRADED
// records sit between a BEGIN and its OUTCOME/ABORTED, so replay
// reproduces exactly the mechanism the degraded epoch actually cleared
// with. The fsync'd OUTCOME record is the commit point: recovery
// (replay_journal) rebuilds the network from its genesis state and
// re-runs the journal forward —
//
//   * every OUTCOME is re-applied exactly once (extraction from an
//     identical pre-state is deterministic, verified by pre_digest);
//   * a SETTLED record cross-checks the post-settlement digest;
//   * a BEGIN with no OUTCOME is rolled back: the locks it took lived
//     only in the dead process, so there is nothing to release;
//   * a trailing OUTCOME with no SETTLED (crash between commit and
//     settle, or mid-settle) is applied and then closed with a SETTLED
//     record, so the epoch settles exactly once no matter how many
//     times recovery itself is interrupted.
//
// File format: an 8-byte header "MUSKJRN1", then records
//
//   u32 magic 'MJRN' | u8 type | u32 epoch | u64 digest |
//   u32 payload_len | payload | u64 fnv1a(type..payload)
//
// On open the journal scans the file, keeps the longest valid prefix,
// and truncates any torn/corrupt tail (a crash mid-write loses at most
// the record being written — never a committed one, because append
// returns only after fsync).
//
// Scope: the journal records rebalancing settlements only. A recovered
// network equals the crashed daemon's network exactly when rebalancing
// was the only writer (true for musketeerd, whose network has no
// external payment feed).
//
// Appends are serialized internally (rank kJournal, below the service's
// epoch lock that normally drives them); the read accessors assume a
// quiescent journal — recovery runs before the service exists, and
// tests inspect records between epochs.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/outcome.hpp"
#include "pcn/network.hpp"
#include "pcn/rebalancer.hpp"
#include "util/ordered_mutex.hpp"
#include "util/thread_annotations.hpp"

namespace musketeer::svc {

/// Thrown on an unusable journal (wrong header, I/O failure, replay
/// digest mismatch). Distinct from a torn tail, which open() repairs
/// silently — a JournalError means the operator pointed the daemon at
/// the wrong file or the wrong genesis network.
class JournalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class RecordType : std::uint8_t {
  kBegin = 1,
  kOutcome = 2,
  kSettled = 3,
  kAborted = 4,
  /// Deadline expired mid-epoch; the service is retrying the same epoch
  /// with a cheaper mechanism. Annotation only — the network state is
  /// unchanged (digest repeats the epoch's pre-digest).
  kDegraded = 5,
};

struct JournalRecord {
  RecordType type = RecordType::kBegin;
  int epoch = 0;
  /// BEGIN/OUTCOME/ABORTED carry the pre-settlement network digest;
  /// SETTLED carries the post-settlement digest.
  std::uint64_t digest = 0;
  /// OUTCOME: codec::encode_outcome bytes. DEGRADED: u8 ladder level
  /// (1 = first retry rung) followed by the reason string — the
  /// mechanism name the retry is about to run with, or the literal
  /// "watchdog" prefix when the watchdog forced the cancellation.
  std::string payload;
};

class Journal {
 public:
  /// Opens (creating if absent) the journal at `path`, validates the
  /// header, loads every intact record, and truncates a torn tail.
  explicit Journal(std::string path);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  const std::string& path() const { return path_; }

  /// Every committed record: what open() recovered plus every append
  /// since, in file order.
  const std::vector<JournalRecord>& records() const { return records_; }

  /// Bytes of committed (written + fsync'd) journal. Atomic so the
  /// stats endpoint can read it while the clearing thread appends (the
  /// other read accessors remain quiescent-only).
  std::uint64_t committed_bytes() const {
    return committed_bytes_.load(std::memory_order_relaxed);
  }

  /// Bytes discarded by open() as a torn/corrupt tail (observability).
  std::uint64_t truncated_tail_bytes() const { return truncated_tail_bytes_; }

  void append_begin(int epoch, std::uint64_t pre_digest)
      MUSK_EXCLUDES(mutex_);
  void append_outcome(int epoch, std::uint64_t pre_digest,
                      const core::Outcome& outcome) MUSK_EXCLUDES(mutex_);
  void append_settled(int epoch, std::uint64_t post_digest)
      MUSK_EXCLUDES(mutex_);
  void append_aborted(int epoch, std::uint64_t pre_digest)
      MUSK_EXCLUDES(mutex_);
  /// Records one rung of the degradation ladder: the epoch's deadline
  /// expired at `level - 1` attempts and the service is about to retry
  /// with the mechanism named in `reason`. `pre_digest` must equal the
  /// epoch's BEGIN digest — the failed attempt was rolled back before
  /// this record is written.
  void append_degraded(int epoch, std::uint64_t pre_digest, int level,
                       const std::string& reason) MUSK_EXCLUDES(mutex_);

 private:
  /// Encodes, writes, and fsyncs one record; only then is it added to
  /// records_ and counted in committed_bytes_. On fsync failure the
  /// file is truncated back to the committed prefix (a written but
  /// unsynced record must not resurface on replay) and JournalError is
  /// thrown; if even the truncate fails the journal is poisoned and
  /// every later append throws.
  void append(RecordType type, int epoch, std::uint64_t digest,
              const std::string& payload) MUSK_EXCLUDES(mutex_);

  std::string path_;

  /// Serializes appends (the file offset and poison state are one
  /// atomically-advanced unit). records_/committed_bytes_ are written
  /// under it too but read through the quiescent-only accessors above.
  util::OrderedMutex mutex_{util::LockRank::kJournal, "journal"};
  int fd_ MUSK_GUARDED_BY(mutex_) = -1;
  bool poisoned_ MUSK_GUARDED_BY(mutex_) = false;

  std::vector<JournalRecord> records_;
  std::atomic<std::uint64_t> committed_bytes_{0};
  std::uint64_t truncated_tail_bytes_ = 0;
};

/// Outcome of replaying a journal onto the genesis network at startup.
struct RecoveryReport {
  /// Epochs fully replayed (SETTLED seen, including the close-out
  /// SETTLED that recovery itself appends for an in-flight outcome).
  int epochs_settled = 0;
  /// True when the tail held a committed OUTCOME with no SETTLED — the
  /// daemon died between commit and settle (or mid-settle); recovery
  /// applied it once and closed the epoch.
  bool applied_inflight = false;
  /// BEGIN records with no OUTCOME/ABORTED: the locks died with the
  /// process, nothing durable happened, the epoch number is reused.
  int rolled_back = 0;
  /// ABORTED records seen (mechanism threw or the degradation ladder
  /// was exhausted; epoch number was reused).
  int aborted_epochs = 0;
  /// DEGRADED records seen: ladder rungs taken across all epochs (one
  /// epoch that fell two rungs counts twice).
  int degraded_epochs = 0;
  /// Epoch the restarted service must resume at.
  int next_epoch = 0;
  /// network.state_digest() after replay.
  std::uint64_t final_digest = 0;
};

/// Replays `journal` onto `network`, which must be in the same genesis
/// state the journal was started against (verified record-by-record via
/// digests; mismatch throws JournalError). Mutates the journal only to
/// close an in-flight epoch with its missing SETTLED record.
RecoveryReport replay_journal(Journal& journal, pcn::Network& network,
                              const pcn::RebalancePolicy& policy);

}  // namespace musketeer::svc
