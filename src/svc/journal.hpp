// Crash-safe epoch journal: an append-only, checksummed write-ahead log
// that makes settlement atomic across daemon restarts — now stored as a
// sequence of rotated segments so checkpointing (svc/snapshot.hpp) can
// compact history the newest snapshot already covers.
//
// Per epoch the service appends up to three records:
//
//   BEGIN(epoch, pre_digest)          queue drained, capacities locked;
//                                     payload carries the drained
//                                     (player, seq) intake watermarks
//   OUTCOME(epoch, pre_digest, bytes) the cleared outcome, fsync'd
//                                     *before* apply_outcome runs
//   SETTLED(epoch, post_digest)       settlement reached the network
//
// plus ABORTED(epoch, pre_digest) when the mechanism throws and the
// service released the locks instead of settling, and
// DEGRADED(epoch, pre_digest, level + reason) each time the epoch
// deadline expired and the service retried the same epoch one rung down
// the degradation ladder (DESIGN.md §14) — zero or more DEGRADED
// records sit between a BEGIN and its OUTCOME/ABORTED, so replay
// reproduces exactly the mechanism the degraded epoch actually cleared
// with. The fsync'd OUTCOME record is the commit point: recovery
// (replay_journal) rebuilds the network from its genesis state and
// re-runs the journal forward —
//
//   * every OUTCOME is re-applied exactly once (extraction from an
//     identical pre-state is deterministic, verified by pre_digest);
//   * a SETTLED record cross-checks the post-settlement digest;
//   * a BEGIN with no OUTCOME is rolled back: the locks it took lived
//     only in the dead process, so there is nothing to release;
//   * a trailing OUTCOME with no SETTLED (crash between commit and
//     settle, or mid-settle) is applied and then closed with a SETTLED
//     record, so the epoch settles exactly once no matter how many
//     times recovery itself is interrupted.
//
// On-disk layout (DESIGN.md §15): the journal at base path `P` is the
// segment files `P.<seq>.wal` (6-digit zero-padded seq) plus an
// advisory manifest `P.manifest`. Each segment starts with the 8-byte
// header "MUSKJRN1", then records
//
//   u32 magic 'MJRN' | u8 type | u32 epoch | u64 digest |
//   u32 payload_len | payload | u64 fnv1a(type..payload)
//
// Appends go to the newest segment. Segments roll at epoch boundaries —
// explicitly before each snapshot (so a recovery tail always starts at
// a BEGIN) and automatically once the active segment exceeds
// JournalConfig::max_segment_bytes. compact_below(seq) unlinks whole
// segments a durable snapshot has made redundant. The manifest lists
// the live segment seqs; it is rewritten (tmp + fsync + rename) on
// every roll/compact but the directory scan is the ground truth on
// open — a crash between a roll and the manifest rewrite costs nothing.
//
// On open the journal scans the segment chain in seq order, keeps the
// longest valid record prefix, and discards the torn/corrupt tail (the
// rest of the damaged segment and every later segment — those can only
// be crash artifacts, because append returns only after fsync).
//
// Scope: the journal records rebalancing settlements only. A recovered
// network equals the crashed daemon's network exactly when rebalancing
// was the only writer (true for musketeerd, whose network has no
// external payment feed).
//
// Appends are serialized internally (rank kJournal, below the service's
// epoch lock that normally drives them); the read accessors assume a
// quiescent journal — recovery runs before the service exists, and
// tests inspect records between epochs.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/outcome.hpp"
#include "core/types.hpp"
#include "pcn/network.hpp"
#include "pcn/rebalancer.hpp"
#include "util/ordered_mutex.hpp"
#include "util/thread_annotations.hpp"

namespace musketeer::svc {

/// Thrown on an unusable journal (wrong header, I/O failure, replay
/// digest mismatch). Distinct from a torn tail, which open() repairs
/// silently — a JournalError means the operator pointed the daemon at
/// the wrong file, the wrong genesis network, or the disk itself
/// failed. I/O failures carry the failing operation and its errno so
/// callers can distinguish ENOSPC / EROFS from corruption.
class JournalError : public std::runtime_error {
 public:
  explicit JournalError(const std::string& what) : std::runtime_error(what) {}
  JournalError(const std::string& what, std::string op, int saved_errno)
      : std::runtime_error(what),
        op_(std::move(op)),
        saved_errno_(saved_errno) {}

  /// The syscall-level operation that failed ("write", "fsync",
  /// "rename", ...); empty for logical errors (bad header, digest
  /// mismatch, malformed record sequence).
  const std::string& op() const { return op_; }
  /// errno captured at the failure site; 0 for logical errors.
  int saved_errno() const { return saved_errno_; }

 private:
  std::string op_;
  int saved_errno_ = 0;
};

enum class RecordType : std::uint8_t {
  kBegin = 1,
  kOutcome = 2,
  kSettled = 3,
  kAborted = 4,
  /// Deadline expired mid-epoch; the service is retrying the same epoch
  /// with a cheaper mechanism. Annotation only — the network state is
  /// unchanged (digest repeats the epoch's pre-digest).
  kDegraded = 5,
};

struct JournalRecord {
  RecordType type = RecordType::kBegin;
  int epoch = 0;
  /// BEGIN/OUTCOME/ABORTED carry the pre-settlement network digest;
  /// SETTLED carries the post-settlement digest.
  std::uint64_t digest = 0;
  /// BEGIN: encode_watermarks of the (player, seq) pairs drained into
  /// the epoch (empty when no sequenced bids were drained).
  /// OUTCOME: codec::encode_outcome bytes. DEGRADED: u8 ladder level
  /// (1 = first retry rung) followed by the reason string — the
  /// mechanism name the retry is about to run with, or the literal
  /// "watchdog" prefix when the watchdog forced the cancellation.
  std::string payload;
};

/// Per-player intake sequence watermarks, sorted by player id. Carried
/// in BEGIN payloads and snapshots so a restarted daemon can keep
/// answering kDuplicate for bids that were drained into a *committed*
/// epoch before the crash (bids drained into rolled-back epochs had no
/// effect, so their seqs must stay resubmittable).
using SeqWatermarks = std::vector<std::pair<core::PlayerId, std::uint32_t>>;

std::string encode_watermarks(const SeqWatermarks& watermarks);
/// Throws core::CodecError on malformed payload bytes.
SeqWatermarks decode_watermarks(std::string_view payload);

/// Path of segment `seq` of the journal at `base_path`
/// (`<base>.<seq 6-digit>.wal`).
std::string segment_path(const std::string& base_path, std::uint64_t seq);
/// Path of the advisory segment manifest (`<base>.manifest`).
std::string manifest_path(const std::string& base_path);
/// Segment seqs present on disk for `base_path`, ascending. Read-only.
std::vector<std::uint64_t> list_segments(const std::string& base_path);

/// One segment file as seen by a read-only scan.
struct SegmentStat {
  std::uint64_t seq = 0;
  std::string path;
  /// Bytes on disk / bytes of the longest valid prefix (header +
  /// intact records). Differ exactly when the segment is torn/corrupt.
  std::uint64_t file_bytes = 0;
  std::uint64_t valid_bytes = 0;
  std::size_t records = 0;
  bool header_ok = false;
  bool clean = false;  ///< header_ok and no torn/corrupt tail
};

/// Result of a read-only walk over the journal's on-disk state: what
/// Journal::open would recover, without mutating anything. Used by
/// `musk_journal inspect|verify` and the recovery fuzzer.
struct JournalScan {
  std::vector<SegmentStat> segments;  ///< ascending seq
  /// The longest valid record prefix across the segment chain (records
  /// past the first damaged segment are crash artifacts and excluded).
  std::vector<JournalRecord> records;
  bool clean = true;        ///< every segment clean, chain contiguous
  bool manifest_ok = true;  ///< manifest present, intact, matches disk
  std::string note;         ///< first problem found (diagnostic)
};

/// Scans segments + manifest without opening anything for write. Never
/// repairs; never throws on corruption (corruption is the *answer*).
JournalScan scan_journal(const std::string& base_path);

struct JournalConfig {
  /// Roll to a fresh segment once the active one exceeds this many
  /// bytes (checked at epoch boundaries, so an epoch's records never
  /// straddle a roll). 0 = roll only explicitly (roll_segment()).
  std::uint64_t max_segment_bytes = 0;
};

class Journal {
 public:
  /// Opens (creating if absent) the journal at `base_path`, validates
  /// the segment chain, loads every intact record, and truncates or
  /// unlinks any torn/corrupt tail.
  explicit Journal(std::string base_path)
      : Journal(std::move(base_path), JournalConfig{}) {}
  Journal(std::string base_path, JournalConfig config);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  const std::string& path() const { return path_; }

  /// Every committed record: what open() recovered plus every append
  /// since, in stream order. Compaction removes files, not this
  /// in-memory view (indices stay stable for records_from_segment).
  const std::vector<JournalRecord>& records() const { return records_; }

  /// Bytes of committed (written + fsync'd) journal across all *live*
  /// segments — compaction subtracts what it unlinks. Atomic so the
  /// stats endpoint can read it while the clearing thread appends (the
  /// other read accessors remain quiescent-only).
  std::uint64_t committed_bytes() const {
    return committed_bytes_.load(std::memory_order_relaxed);
  }

  /// Bytes discarded by open() as a torn/corrupt tail (observability).
  std::uint64_t truncated_tail_bytes() const { return truncated_tail_bytes_; }

  /// Live segment count / active (newest) segment seq / oldest live
  /// segment seq. segment_count() is atomic for the stats endpoint.
  std::uint64_t segment_count() const {
    return segment_count_.load(std::memory_order_relaxed);
  }
  std::uint64_t current_segment() const MUSK_EXCLUDES(mutex_);
  std::uint64_t oldest_segment() const MUSK_EXCLUDES(mutex_);

  /// Index into records() of the first record stored in a live segment
  /// with seq >= `seq` (records().size() when no such record): the
  /// recovery tail for a snapshot whose first_segment is `seq`.
  std::size_t records_from_segment(std::uint64_t seq) const
      MUSK_EXCLUDES(mutex_);

  /// Closes the active segment and opens a fresh one (header written
  /// and fsync'd, manifest rewritten). Called at epoch boundaries only.
  void roll_segment() MUSK_EXCLUDES(mutex_);

  /// Unlinks every live segment with seq < `seq_bound` (never the
  /// active one) and rewrites the manifest; returns how many segments
  /// were removed. The caller guarantees a durable snapshot covers the
  /// removed history (svc::SnapshotStore::oldest_retained_first_segment).
  std::size_t compact_below(std::uint64_t seq_bound) MUSK_EXCLUDES(mutex_);

  void append_begin(int epoch, std::uint64_t pre_digest)
      MUSK_EXCLUDES(mutex_);
  /// BEGIN carrying the intake watermarks drained into the epoch.
  void append_begin(int epoch, std::uint64_t pre_digest,
                    const SeqWatermarks& drained) MUSK_EXCLUDES(mutex_);
  void append_outcome(int epoch, std::uint64_t pre_digest,
                      const core::Outcome& outcome) MUSK_EXCLUDES(mutex_);
  void append_settled(int epoch, std::uint64_t post_digest)
      MUSK_EXCLUDES(mutex_);
  void append_aborted(int epoch, std::uint64_t pre_digest)
      MUSK_EXCLUDES(mutex_);
  /// Records one rung of the degradation ladder: the epoch's deadline
  /// expired at `level - 1` attempts and the service is about to retry
  /// with the mechanism named in `reason`. `pre_digest` must equal the
  /// epoch's BEGIN digest — the failed attempt was rolled back before
  /// this record is written.
  void append_degraded(int epoch, std::uint64_t pre_digest, int level,
                       const std::string& reason) MUSK_EXCLUDES(mutex_);

 private:
  struct LiveSegment {
    std::uint64_t seq = 0;
    std::uint64_t bytes = 0;        ///< committed bytes incl. header
    std::size_t first_record = 0;   ///< index into records_
  };

  /// Encodes, writes, and fsyncs one record; only then is it added to
  /// records_ and counted in committed_bytes_. On fsync failure the
  /// file is truncated back to the committed prefix (a written but
  /// unsynced record must not resurface on replay) and JournalError is
  /// thrown; if even the truncate fails the journal is poisoned and
  /// every later append throws.
  void append(RecordType type, int epoch, std::uint64_t digest,
              const std::string& payload) MUSK_EXCLUDES(mutex_);
  void roll_locked() MUSK_REQUIRES(mutex_);
  void write_manifest_locked() MUSK_REQUIRES(mutex_);

  std::string path_;
  const JournalConfig config_;

  /// Serializes appends and segment transitions (the file offset,
  /// poison state, and segment chain are one atomically-advanced
  /// unit). records_/committed_bytes_ are written under it too but
  /// read through the quiescent-only accessors above.
  mutable util::OrderedMutex mutex_{util::LockRank::kJournal, "journal"};
  int fd_ MUSK_GUARDED_BY(mutex_) = -1;
  bool poisoned_ MUSK_GUARDED_BY(mutex_) = false;
  std::vector<LiveSegment> segments_ MUSK_GUARDED_BY(mutex_);

  std::vector<JournalRecord> records_;
  std::atomic<std::uint64_t> committed_bytes_{0};
  std::atomic<std::uint64_t> segment_count_{0};
  std::uint64_t truncated_tail_bytes_ = 0;
};

/// Outcome of replaying a journal onto a base network at startup.
struct RecoveryReport {
  /// Epochs fully replayed (SETTLED seen, including the close-out
  /// SETTLED that recovery itself appends for an in-flight outcome).
  int epochs_settled = 0;
  /// True when the tail held a committed OUTCOME with no SETTLED — the
  /// daemon died between commit and settle (or mid-settle); recovery
  /// applied it once and closed the epoch.
  bool applied_inflight = false;
  /// BEGIN records with no OUTCOME/ABORTED: the locks died with the
  /// process, nothing durable happened, the epoch number is reused.
  int rolled_back = 0;
  /// ABORTED records seen (mechanism threw or the degradation ladder
  /// was exhausted; epoch number was reused).
  int aborted_epochs = 0;
  /// DEGRADED records seen: ladder rungs taken across all epochs (one
  /// epoch that fell two rungs counts twice).
  int degraded_epochs = 0;
  /// Epoch the restarted service must resume at.
  int next_epoch = 0;
  /// network.state_digest() after replay.
  std::uint64_t final_digest = 0;

  /// Checkpointed-recovery fields (svc::recover). All zero/false when
  /// recovery replayed from genesis.
  bool from_snapshot = false;
  /// next_epoch the snapshot was taken at (recovery replayed only the
  /// journal tail past it).
  int snapshot_epoch = 0;
  /// Snapshot files skipped because their checksum or digest failed.
  int snapshots_discarded = 0;
  /// Live segments whose records were replayed.
  int segments_replayed = 0;
  /// Intake watermarks of every *committed* epoch (snapshot state plus
  /// replayed BEGIN payloads), for BidQueue::restore_watermarks.
  SeqWatermarks watermarks;
  /// Admission-controller EWMA restored from the snapshot (0 when
  /// recovering from genesis or a pre-checkpoint journal).
  double ewma_seconds = 0.0;
  int shed_level = 0;
};

/// Replays `journal` onto `network`, which must be in the same genesis
/// state the journal was started against (verified record-by-record via
/// digests; mismatch throws JournalError, as does a compacted journal
/// whose genesis history is gone — use svc::recover for those). Mutates
/// the journal only to close an in-flight epoch with its missing
/// SETTLED record.
RecoveryReport replay_journal(Journal& journal, pcn::Network& network,
                              const pcn::RebalancePolicy& policy);

/// Core of the recovery state machine: replays
/// journal.records()[first_record..] onto `network`, starting from the
/// counters in `seed` (snapshot state, or zeroes for genesis). Shared
/// by replay_journal and svc::recover.
RecoveryReport replay_records(Journal& journal, pcn::Network& network,
                              const pcn::RebalancePolicy& policy,
                              std::size_t first_record, RecoveryReport seed);

}  // namespace musketeer::svc
