#include "svc/executor.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/assert.hpp"

namespace musketeer::svc {

using namespace std::chrono_literals;

ParallelExecutor::ParallelExecutor(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads_ = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back(
        [this](std::stop_token stop) { worker_loop(std::move(stop)); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  for (std::jthread& w : workers_) w.request_stop();
  {
    // Wake parked workers so they observe the stop request promptly
    // (their waits are bounded anyway, per the no-deadline-free-wait
    // rule, but there is no reason to make teardown wait a tick).
    util::OrderedLock lock(mutex_);
    wake_.notify_all();
  }
}

void ParallelExecutor::drain_batch() {
  // Lock-free claim loop: every index is handed out exactly once.
  const std::function<void(std::size_t)>* fn;
  std::size_t count;
  {
    util::OrderedLock lock(mutex_);
    fn = batch_fn_;
    count = batch_count_;
  }
  util::CancelToken* const cancel = cancel_.load(std::memory_order_relaxed);
  for (std::size_t i = next_task_.fetch_add(1, std::memory_order_relaxed);
       i < count; i = next_task_.fetch_add(1, std::memory_order_relaxed)) {
    if (cancel != nullptr && cancel->poll()) {
      // Deadline fast path: stop claiming — the indices this thread
      // would have run are skipped, and run() surfaces the cancellation
      // after the barrier. In-flight siblings unwind at their own
      // cancel points.
      util::OrderedLock lock(mutex_);
      if (!first_error_) {
        first_error_ = std::make_exception_ptr(util::SolveCancelled());
      }
      break;
    }
    try {
      (*fn)(i);
    } catch (...) {  // musk-lint: allow(bare-catch) -- run() rethrows it
      util::OrderedLock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ParallelExecutor::worker_loop(std::stop_token stop) {
  std::uint64_t seen_generation = 0;
  while (!stop.stop_requested()) {
    {
      util::OrderedUniqueLock lock(mutex_);
      // Bounded wait (repo rule: every wait re-checks on a cadence).
      if (!wake_.wait_for(lock, stop, 100ms, [&] {
            return generation_ != seen_generation;
          })) {
        continue;
      }
      seen_generation = generation_;
    }
    drain_batch();
    {
      util::OrderedLock lock(mutex_);
      if (--inflight_ == 0) done_.notify_all();
    }
  }
}

void ParallelExecutor::run(std::size_t count,
                           const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (threads_ == 1 || count == 1) {
    // Inline legacy path: no locks, no cross-thread handoff. The cancel
    // check mirrors drain_batch's so "--threads 1" degrades under a
    // deadline exactly like the pool does.
    util::CancelToken* const cancel = cancel_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < count; ++i) {
      if (cancel != nullptr && cancel->poll()) throw util::SolveCancelled();
      fn(i);
    }
    return;
  }

  {
    util::OrderedLock lock(mutex_);
    MUSK_ASSERT_MSG(batch_fn_ == nullptr, "ParallelExecutor::run reentered");
    batch_fn_ = &fn;
    batch_count_ = count;
    first_error_ = nullptr;
    inflight_ = static_cast<int>(workers_.size());
    next_task_.store(0, std::memory_order_relaxed);
    ++generation_;
    wake_.notify_all();
  }

  // The submitting thread works the same claim cursor as the pool.
  drain_batch();

  std::exception_ptr error;
  {
    util::OrderedUniqueLock lock(mutex_);
    while (inflight_ != 0) {
      done_.wait_for(lock, 100ms, [&] { return inflight_ == 0; });
    }
    batch_fn_ = nullptr;
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace musketeer::svc
