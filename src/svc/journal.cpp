#include "svc/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core/io.hpp"
#include "obs/obs.hpp"
#include "util/fault.hpp"

namespace musketeer::svc {

namespace {

constexpr char kHeader[] = "MUSKJRN1";
constexpr std::size_t kHeaderBytes = 8;
// 'M' 'J' 'R' 'N' little-endian.
constexpr std::uint32_t kRecordMagic = 0x4E524A4DU;
// magic + type + epoch + digest + payload_len.
constexpr std::size_t kRecordHeaderBytes = 4 + 1 + 4 + 8 + 4;
constexpr std::size_t kChecksumBytes = 8;
// An OUTCOME payload is one encoded core::Outcome; 16 MiB bounds even a
// pathological million-cycle epoch, and anything larger in the file is
// corruption, not data.
constexpr std::size_t kMaxRecordPayload = 16u << 20;

std::uint64_t fnv1a(const char* data, std::size_t n) {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint32_t load_u32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

std::uint64_t load_u64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

std::string encode_record(RecordType type, int epoch, std::uint64_t digest,
                          const std::string& payload) {
  std::string out;
  out.reserve(kRecordHeaderBytes + payload.size() + kChecksumBytes);
  core::codec::put_u32(out, kRecordMagic);
  core::codec::put_u8(out, static_cast<std::uint8_t>(type));
  core::codec::put_u32(out, static_cast<std::uint32_t>(epoch));
  core::codec::put_u64(out, digest);
  core::codec::put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out += payload;
  // Checksum covers type..payload: the magic only locates the record.
  core::codec::put_u64(out, fnv1a(out.data() + 4, out.size() - 4));
  return out;
}

[[noreturn]] void io_fail(const std::string& path, const char* what) {
  throw JournalError("journal " + path + ": " + what + ": " +
                     std::strerror(errno));
}

void write_all(int fd, const std::string& path, const char* data,
               std::size_t n) {
  while (n > 0) {
    const ssize_t wrote = ::write(fd, data, n);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      io_fail(path, "write failed");
    }
    data += wrote;
    n -= static_cast<std::size_t>(wrote);
  }
}

}  // namespace

Journal::Journal(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) io_fail(path_, "open failed");
  try {
    std::string buf;
    char chunk[4096];
    for (;;) {
      const ssize_t got = ::read(fd_, chunk, sizeof chunk);
      if (got < 0) {
        if (errno == EINTR) continue;
        io_fail(path_, "read failed");
      }
      if (got == 0) break;
      buf.append(chunk, static_cast<std::size_t>(got));
    }

    if (buf.empty()) {
      write_all(fd_, path_, kHeader, kHeaderBytes);
      if (::fsync(fd_) != 0) io_fail(path_, "fsync failed");
      committed_bytes_ = kHeaderBytes;
      return;
    }
    if (buf.size() < kHeaderBytes ||
        std::memcmp(buf.data(), kHeader, kHeaderBytes) != 0) {
      throw JournalError("journal " + path_ +
                         ": bad header (not a musketeer journal)");
    }

    // Keep the longest prefix of intact records; everything after the
    // first torn or corrupt one is a crash artifact and is discarded.
    std::size_t off = kHeaderBytes;
    while (buf.size() - off >=
           kRecordHeaderBytes + kChecksumBytes) {
      const char* rec = buf.data() + off;
      if (load_u32(rec) != kRecordMagic) break;
      const std::uint8_t type = static_cast<std::uint8_t>(rec[4]);
      if (type < static_cast<std::uint8_t>(RecordType::kBegin) ||
          type > static_cast<std::uint8_t>(RecordType::kDegraded)) {
        break;
      }
      const std::uint32_t len = load_u32(rec + 17);
      if (len > kMaxRecordPayload ||
          buf.size() - off - kRecordHeaderBytes < len + kChecksumBytes) {
        break;
      }
      if (fnv1a(rec + 4, kRecordHeaderBytes - 4 + len) !=
          load_u64(rec + kRecordHeaderBytes + len)) {
        break;
      }
      JournalRecord record;
      record.type = static_cast<RecordType>(type);
      record.epoch = static_cast<int>(load_u32(rec + 5));
      record.digest = load_u64(rec + 9);
      record.payload.assign(rec + kRecordHeaderBytes, len);
      records_.push_back(std::move(record));
      off += kRecordHeaderBytes + len + kChecksumBytes;
    }
    committed_bytes_ = off;
    if (off < buf.size()) {
      truncated_tail_bytes_ = buf.size() - off;
      if (::ftruncate(fd_, static_cast<off_t>(off)) != 0) {
        io_fail(path_, "truncate of torn tail failed");
      }
      if (::fsync(fd_) != 0) io_fail(path_, "fsync failed");
    }
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

void Journal::append_begin(int epoch, std::uint64_t pre_digest) {
  append(RecordType::kBegin, epoch, pre_digest, std::string());
}

void Journal::append_outcome(int epoch, std::uint64_t pre_digest,
                             const core::Outcome& outcome) {
  std::string payload;
  core::codec::encode_outcome(outcome, payload);
  append(RecordType::kOutcome, epoch, pre_digest, payload);
}

void Journal::append_settled(int epoch, std::uint64_t post_digest) {
  append(RecordType::kSettled, epoch, post_digest, std::string());
}

void Journal::append_aborted(int epoch, std::uint64_t pre_digest) {
  append(RecordType::kAborted, epoch, pre_digest, std::string());
}

void Journal::append_degraded(int epoch, std::uint64_t pre_digest, int level,
                              const std::string& reason) {
  std::string payload;
  core::codec::put_u8(payload, static_cast<std::uint8_t>(level));
  payload += reason;
  append(RecordType::kDegraded, epoch, pre_digest, payload);
}

namespace {

[[maybe_unused]] const char* record_type_name(RecordType type) {
  switch (type) {
    case RecordType::kBegin: return "begin";
    case RecordType::kOutcome: return "outcome";
    case RecordType::kSettled: return "settled";
    case RecordType::kAborted: return "aborted";
    case RecordType::kDegraded: return "degraded";
  }
  return "unknown";
}

}  // namespace

void Journal::append(RecordType type, int epoch, std::uint64_t digest,
                     const std::string& payload) {
  MUSK_OBS_SPAN(span, "svc.journal_append");
  span.set_detail(record_type_name(type));
  span.set_epoch(static_cast<std::uint64_t>(epoch));
  const util::OrderedLock lock(mutex_);
  if (poisoned_) {
    throw JournalError("journal " + path_ +
                       ": poisoned by earlier fsync failure");
  }
  if (payload.size() > kMaxRecordPayload) {
    throw JournalError("journal " + path_ + ": record payload exceeds cap");
  }
  std::string bytes = encode_record(type, epoch, digest, payload);
  const std::size_t full = bytes.size();
  MUSK_FAULT_MUTATE("journal.write", bytes);
  const bool torn = bytes.size() != full;

  if (::lseek(fd_, static_cast<off_t>(committed_bytes_), SEEK_SET) < 0) {
    io_fail(path_, "seek failed");
  }
  write_all(fd_, path_, bytes.data(), bytes.size());
  if (torn) {
    // A drop/truncate fault left a partial record on disk, exactly like
    // a crash mid-write; make it durable so recovery sees the torn tail.
    ::fsync(fd_);
    throw util::fault::CrashPoint("torn write in journal " + path_);
  }
  if (MUSK_FAULT_FAIL("journal.fsync") || ::fsync(fd_) != 0) {
    // The record reached the page cache but is not durable. It must not
    // resurface on replay (the service will abort this epoch), so cut
    // the file back to the committed prefix before reporting failure.
    if (::ftruncate(fd_, static_cast<off_t>(committed_bytes_)) != 0) {
      poisoned_ = true;
      throw JournalError("journal " + path_ +
                         ": fsync and truncate both failed; journal poisoned");
    }
    throw JournalError("journal " + path_ + ": fsync failed");
  }
  committed_bytes_ += full;
  MUSK_OBS_COUNT("svc.journal.append_total", 1);
  MUSK_OBS_HISTOGRAM("svc.journal.append_seconds", span.end());
  JournalRecord record;
  record.type = type;
  record.epoch = epoch;
  record.digest = digest;
  record.payload = payload;
  records_.push_back(std::move(record));
}

RecoveryReport replay_journal(Journal& journal, pcn::Network& network,
                              const pcn::RebalancePolicy& policy) {
  RecoveryReport report;
  enum class Phase { kIdle, kBegun, kCommitted };
  Phase phase = Phase::kIdle;
  int current = 0;

  const auto check_digest = [&](const JournalRecord& r, const char* when) {
    const std::uint64_t have = network.state_digest();
    if (r.digest != have) {
      throw JournalError(
          "journal " + journal.path() + ": digest mismatch at epoch " +
          std::to_string(r.epoch) + " (" + when + "): journal " +
          std::to_string(r.digest) + " vs network " + std::to_string(have) +
          " — wrong genesis network for this journal?");
    }
  };

  // Iterate by index over the records present at entry: closing an
  // in-flight epoch appends to the journal below, after the scan.
  const std::size_t n = journal.records().size();
  for (std::size_t i = 0; i < n; ++i) {
    const JournalRecord& r = journal.records()[i];
    switch (r.type) {
      case RecordType::kBegin:
        if (phase == Phase::kCommitted) {
          throw JournalError("journal " + journal.path() +
                             ": BEGIN while epoch " + std::to_string(current) +
                             " is committed but unsettled");
        }
        // A BEGIN on top of a BEGIN: the earlier epoch died before its
        // outcome committed. Its locks lived only in the dead process.
        if (phase == Phase::kBegun) ++report.rolled_back;
        check_digest(r, "begin");
        phase = Phase::kBegun;
        current = r.epoch;
        report.next_epoch = r.epoch;
        break;
      case RecordType::kOutcome: {
        if (phase != Phase::kBegun || r.epoch != current) {
          throw JournalError("journal " + journal.path() +
                             ": OUTCOME without matching BEGIN at epoch " +
                             std::to_string(r.epoch));
        }
        check_digest(r, "outcome");
        // Extraction from the digest-verified pre-state is deterministic,
        // so the stored outcome's edge indices line up with this game.
        pcn::ExtractedGame extracted = pcn::extract_and_lock(network, policy);
        const core::Outcome outcome =
            core::codec::outcome_from_bytes(r.payload);
        pcn::apply_outcome(network, extracted, outcome);
        phase = Phase::kCommitted;
        break;
      }
      case RecordType::kSettled:
        if (phase == Phase::kIdle || r.epoch != current) {
          throw JournalError("journal " + journal.path() +
                             ": SETTLED without matching BEGIN at epoch " +
                             std::to_string(r.epoch));
        }
        check_digest(r, "settled");
        ++report.epochs_settled;
        phase = Phase::kIdle;
        report.next_epoch = current + 1;
        break;
      case RecordType::kDegraded:
        if (phase != Phase::kBegun || r.epoch != current) {
          throw JournalError("journal " + journal.path() +
                             ": DEGRADED without matching BEGIN at epoch " +
                             std::to_string(r.epoch));
        }
        // Annotation only: the failed attempt was rolled back before the
        // record was written, so the network still sits at the epoch's
        // pre-state. The record exists so replay can prove the degraded
        // outcome came from the documented ladder, not silent drift.
        check_digest(r, "degraded");
        ++report.degraded_epochs;
        break;
      case RecordType::kAborted:
        if (phase != Phase::kBegun || r.epoch != current) {
          throw JournalError("journal " + journal.path() +
                             ": ABORTED without matching BEGIN at epoch " +
                             std::to_string(r.epoch));
        }
        // The service released the locks before writing the record, so
        // the network is back at the pre-state; the epoch number is
        // reused by the next clear.
        check_digest(r, "aborted");
        ++report.aborted_epochs;
        phase = Phase::kIdle;
        report.next_epoch = current;
        break;
    }
  }

  if (phase == Phase::kBegun) {
    // Dangling BEGIN: crash before commit. Nothing durable happened.
    ++report.rolled_back;
    report.next_epoch = current;
  } else if (phase == Phase::kCommitted) {
    // Crash between commit and settle (or mid-settle): the outcome was
    // applied exactly once above; close the epoch durably so a second
    // recovery replays SETTLED instead of re-detecting the in-flight
    // tail.
    report.applied_inflight = true;
    ++report.epochs_settled;
    journal.append_settled(current, network.state_digest());
    report.next_epoch = current + 1;
  }
  report.final_digest = network.state_digest();
  return report;
}

}  // namespace musketeer::svc
