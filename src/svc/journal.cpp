#include "svc/journal.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>

#include "core/io.hpp"
#include "obs/obs.hpp"
#include "util/fault.hpp"

namespace musketeer::svc {

namespace {

constexpr char kHeader[] = "MUSKJRN1";
constexpr std::size_t kHeaderBytes = 8;
constexpr char kManifestHeader[] = "MUSKMAN1";
constexpr std::size_t kManifestHeaderBytes = 8;
// 'M' 'J' 'R' 'N' little-endian.
constexpr std::uint32_t kRecordMagic = 0x4E524A4DU;
// magic + type + epoch + digest + payload_len.
constexpr std::size_t kRecordHeaderBytes = 4 + 1 + 4 + 8 + 4;
constexpr std::size_t kChecksumBytes = 8;
// An OUTCOME payload is one encoded core::Outcome; 16 MiB bounds even a
// pathological million-cycle epoch, and anything larger in the file is
// corruption, not data.
constexpr std::size_t kMaxRecordPayload = 16u << 20;

std::uint64_t fnv1a(const char* data, std::size_t n) {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint32_t load_u32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

std::uint64_t load_u64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

std::string encode_record(RecordType type, int epoch, std::uint64_t digest,
                          const std::string& payload) {
  std::string out;
  out.reserve(kRecordHeaderBytes + payload.size() + kChecksumBytes);
  core::codec::put_u32(out, kRecordMagic);
  core::codec::put_u8(out, static_cast<std::uint8_t>(type));
  core::codec::put_u32(out, static_cast<std::uint32_t>(epoch));
  core::codec::put_u64(out, digest);
  core::codec::put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out += payload;
  // Checksum covers type..payload: the magic only locates the record.
  core::codec::put_u64(out, fnv1a(out.data() + 4, out.size() - 4));
  return out;
}

[[noreturn]] void io_fail(const std::string& path, const char* op,
                          const char* what) {
  const int saved = errno;
  throw JournalError(
      "journal " + path + ": " + what + ": " + std::strerror(saved), op,
      saved);
}

void write_all(int fd, const std::string& path, const char* data,
               std::size_t n) {
  while (n > 0) {
    const ssize_t wrote = ::write(fd, data, n);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      io_fail(path, "write", "write failed");
    }
    data += wrote;
    n -= static_cast<std::size_t>(wrote);
  }
}

std::string dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

std::string base_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

// Durability of creates/renames/unlinks needs the directory entry itself
// on disk. Best-effort: a directory that cannot be opened (exotic FS)
// degrades to POSIX-default behaviour, it does not fail the operation.
void fsync_parent_dir(const std::string& path) {
  const int fd =
      ::open(dir_of(path).c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

std::string read_file(const std::string& path, bool* exists) {
  std::string buf;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (exists != nullptr) *exists = false;
    if (errno == ENOENT) return buf;
    io_fail(path, "open", "open failed");
  }
  if (exists != nullptr) *exists = true;
  char chunk[4096];
  for (;;) {
    const ssize_t got = ::read(fd, chunk, sizeof chunk);
    if (got < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      errno = saved;
      io_fail(path, "read", "read failed");
    }
    if (got == 0) break;
    buf.append(chunk, static_cast<std::size_t>(got));
  }
  ::close(fd);
  return buf;
}

// Atomic small-file publication: tmp + rename. Deliberately NO fsync
// anywhere: this is only used for the manifest, which is advisory — a
// crash can leave the old bytes, the new bytes, or a torn file, and
// every reader (parse_manifest) treats all three as "rebuild from the
// directory scan". Fsyncing here would buy durability nothing needs
// while doubling the fsync bill of every checkpoint (the manifest is
// rewritten on both the roll and the compaction halves).
void publish_file(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) io_fail(tmp, "open", "open failed");
  try {
    write_all(fd, tmp, bytes.data(), bytes.size());
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    errno = saved;
    io_fail(path, "rename", "rename failed");
  }
}

std::string encode_manifest(const std::vector<std::uint64_t>& seqs) {
  std::string out(kManifestHeader, kManifestHeaderBytes);
  std::string body;
  core::codec::put_u32(body, static_cast<std::uint32_t>(seqs.size()));
  for (const std::uint64_t seq : seqs) core::codec::put_u64(body, seq);
  out += body;
  core::codec::put_u64(out, fnv1a(body.data(), body.size()));
  return out;
}

// Parses the manifest; returns false (without touching `seqs`) when the
// file is missing, torn, or checksum-corrupt — the manifest is advisory
// and the directory scan is the ground truth.
bool parse_manifest(const std::string& path, std::vector<std::uint64_t>* seqs) {
  bool exists = false;
  std::string buf;
  try {
    buf = read_file(path, &exists);
  } catch (const JournalError&) {
    return false;
  }
  if (!exists || buf.size() < kManifestHeaderBytes + 4 + kChecksumBytes) {
    return false;
  }
  if (std::memcmp(buf.data(), kManifestHeader, kManifestHeaderBytes) != 0) {
    return false;
  }
  const char* body = buf.data() + kManifestHeaderBytes;
  const std::size_t body_len = buf.size() - kManifestHeaderBytes -
                               kChecksumBytes;
  if (fnv1a(body, body_len) != load_u64(body + body_len)) return false;
  const std::uint32_t count = load_u32(body);
  if (body_len != 4 + static_cast<std::size_t>(count) * 8) return false;
  seqs->clear();
  for (std::uint32_t i = 0; i < count; ++i) {
    seqs->push_back(load_u64(body + 4 + static_cast<std::size_t>(i) * 8));
  }
  return true;
}

void write_manifest(const std::string& base_path,
                    const std::vector<std::uint64_t>& seqs) {
  publish_file(manifest_path(base_path), encode_manifest(seqs));
}

// Parses one segment file's bytes: fills `stat` and appends intact
// records to `records` (when non-null).
void scan_segment_bytes(const std::string& buf, SegmentStat* stat,
                        std::vector<JournalRecord>* records) {
  stat->file_bytes = buf.size();
  stat->header_ok = buf.size() >= kHeaderBytes &&
                    std::memcmp(buf.data(), kHeader, kHeaderBytes) == 0;
  if (!stat->header_ok) {
    stat->valid_bytes = 0;
    stat->clean = false;
    return;
  }
  std::size_t off = kHeaderBytes;
  while (buf.size() - off >= kRecordHeaderBytes + kChecksumBytes) {
    const char* rec = buf.data() + off;
    if (load_u32(rec) != kRecordMagic) break;
    const std::uint8_t type = static_cast<std::uint8_t>(rec[4]);
    if (type < static_cast<std::uint8_t>(RecordType::kBegin) ||
        type > static_cast<std::uint8_t>(RecordType::kDegraded)) {
      break;
    }
    const std::uint32_t len = load_u32(rec + 17);
    if (len > kMaxRecordPayload ||
        buf.size() - off - kRecordHeaderBytes < len + kChecksumBytes) {
      break;
    }
    if (fnv1a(rec + 4, kRecordHeaderBytes - 4 + len) !=
        load_u64(rec + kRecordHeaderBytes + len)) {
      break;
    }
    if (records != nullptr) {
      JournalRecord record;
      record.type = static_cast<RecordType>(type);
      record.epoch = static_cast<int>(load_u32(rec + 5));
      record.digest = load_u64(rec + 9);
      record.payload.assign(rec + kRecordHeaderBytes, len);
      records->push_back(std::move(record));
    }
    ++stat->records;
    off += kRecordHeaderBytes + len + kChecksumBytes;
  }
  stat->valid_bytes = off;
  stat->clean = off == buf.size();
}

}  // namespace

std::string encode_watermarks(const SeqWatermarks& watermarks) {
  std::string out;
  // An empty watermark set encodes as an empty payload, byte-identical
  // to a pre-checkpoint BEGIN record.
  if (watermarks.empty()) return out;
  core::codec::put_u32(out, static_cast<std::uint32_t>(watermarks.size()));
  for (const auto& [player, seq] : watermarks) {
    core::codec::put_u32(out, static_cast<std::uint32_t>(player));
    core::codec::put_u32(out, seq);
  }
  return out;
}

SeqWatermarks decode_watermarks(std::string_view payload) {
  SeqWatermarks out;
  if (payload.empty()) return out;
  core::codec::Reader in(payload);
  const std::size_t n = in.check_count(in.u32(), 8);
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto player = static_cast<core::PlayerId>(in.u32());
    const std::uint32_t seq = in.u32();
    out.emplace_back(player, seq);
  }
  in.expect_end();
  return out;
}

std::string segment_path(const std::string& base_path, std::uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof buf, ".%06llu.wal",
                static_cast<unsigned long long>(seq));
  return base_path + buf;
}

std::string manifest_path(const std::string& base_path) {
  return base_path + ".manifest";
}

std::vector<std::uint64_t> list_segments(const std::string& base_path) {
  std::vector<std::uint64_t> seqs;
  const std::string dir = dir_of(base_path);
  const std::string prefix = base_of(base_path) + ".";
  constexpr char kSuffix[] = ".wal";
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return seqs;
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() != prefix.size() + 6 + 4) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - 4, 4, kSuffix) != 0) continue;
    bool digits = true;
    std::uint64_t seq = 0;
    for (std::size_t i = prefix.size(); i < prefix.size() + 6; ++i) {
      if (name[i] < '0' || name[i] > '9') {
        digits = false;
        break;
      }
      seq = seq * 10 + static_cast<std::uint64_t>(name[i] - '0');
    }
    if (digits) seqs.push_back(seq);
  }
  ::closedir(d);
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

JournalScan scan_journal(const std::string& base_path) {
  JournalScan scan;
  const std::vector<std::uint64_t> seqs = list_segments(base_path);

  const auto flag = [&scan](const std::string& note) {
    scan.clean = false;
    if (scan.note.empty()) scan.note = note;
  };

  // Records accumulate across the chain only while every earlier
  // segment was fully clean and the seqs are contiguous; anything past
  // the first damaged point is a crash artifact, not data.
  bool chain_valid = true;
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    SegmentStat stat;
    stat.seq = seqs[i];
    stat.path = segment_path(base_path, seqs[i]);
    std::string buf;
    try {
      buf = read_file(stat.path, nullptr);
    } catch (const JournalError& e) {
      flag(e.what());
      chain_valid = false;
      scan.segments.push_back(std::move(stat));
      continue;
    }
    if (chain_valid && i > 0 && seqs[i] != seqs[i - 1] + 1) {
      flag("segment gap: " + stat.path + " does not follow segment " +
           std::to_string(seqs[i - 1]));
      chain_valid = false;
    }
    scan_segment_bytes(buf, &stat,
                       chain_valid ? &scan.records : nullptr);
    if (!stat.clean) {
      if (chain_valid && !stat.header_ok) {
        flag("bad segment header: " + stat.path);
      } else if (chain_valid) {
        flag("torn/corrupt tail in " + stat.path + " at byte " +
             std::to_string(stat.valid_bytes));
      }
      chain_valid = false;
    }
    scan.segments.push_back(std::move(stat));
  }

  std::vector<std::uint64_t> manifest_seqs;
  if (!parse_manifest(manifest_path(base_path), &manifest_seqs) ||
      manifest_seqs != seqs) {
    scan.manifest_ok = false;
  }
  return scan;
}

Journal::Journal(std::string base_path, JournalConfig config)
    : path_(std::move(base_path)), config_(config) {
  const JournalScan scan = scan_journal(path_);

  // Decide the longest usable prefix of the segment chain; everything
  // after it (rest of a torn segment + all later segments) is removed.
  std::size_t keep = 0;            // fully clean segments kept
  bool keep_cut_segment = false;   // also keep scan.segments[keep]'s prefix
  for (const SegmentStat& seg : scan.segments) {
    const bool contiguous =
        keep == 0 || seg.seq == scan.segments[keep - 1].seq + 1;
    if (!contiguous || !seg.header_ok) break;
    if (!seg.clean) {
      keep_cut_segment = true;
      break;
    }
    ++keep;
  }
  if (keep == 0 && !keep_cut_segment && !scan.segments.empty() &&
      scan.segments[0].file_bytes > 0) {
    // The oldest segment is not a musketeer journal at all: refuse to
    // touch it. (Later segments with bad headers are crash-roll
    // artifacts and are repaired below; the oldest one being garbage
    // means the operator pointed the daemon at the wrong file.)
    throw JournalError("journal " + scan.segments[0].path +
                       ": bad header (not a musketeer journal)");
  }

  std::size_t live = keep + (keep_cut_segment ? 1 : 0);
  bool repaired = false;
  std::size_t record_index = 0;
  for (std::size_t i = 0; i < live; ++i) {
    const SegmentStat& seg = scan.segments[i];
    segments_.push_back(LiveSegment{seg.seq, seg.valid_bytes, record_index});
    record_index += seg.records;
  }
  records_.assign(scan.records.begin(),
                  scan.records.begin() +
                      static_cast<std::ptrdiff_t>(record_index));

  // Unlink the discarded tail segments (crash artifacts past the cut).
  for (std::size_t i = live; i < scan.segments.size(); ++i) {
    truncated_tail_bytes_ += scan.segments[i].file_bytes;
    if (::unlink(scan.segments[i].path.c_str()) != 0 && errno != ENOENT) {
      io_fail(scan.segments[i].path, "unlink",
              "unlink of crash-artifact segment failed");
    }
    repaired = true;
  }
  if (repaired) fsync_parent_dir(path_);

  if (segments_.empty()) {
    // Fresh journal (no segments, or a single empty segment-0 file).
    segments_.push_back(LiveSegment{0, kHeaderBytes, 0});
    const std::string path0 = segment_path(path_, 0);
    fd_ = ::open(path0.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd_ < 0) io_fail(path0, "open", "open failed");
    try {
      write_all(fd_, path0, kHeader, kHeaderBytes);
      if (::fsync(fd_) != 0) io_fail(path0, "fsync", "fsync failed");
    } catch (...) {
      ::close(fd_);
      fd_ = -1;
      throw;
    }
    fsync_parent_dir(path_);
    repaired = true;
  } else {
    const LiveSegment& tail = segments_.back();
    const std::string tail_path = segment_path(path_, tail.seq);
    fd_ = ::open(tail_path.c_str(), O_RDWR | O_CLOEXEC);
    if (fd_ < 0) io_fail(tail_path, "open", "open failed");
    try {
      if (keep_cut_segment) {
        // Cut the torn/corrupt tail of the last kept segment back to
        // its longest valid prefix.
        const SegmentStat& cut = scan.segments[live - 1];
        truncated_tail_bytes_ += cut.file_bytes - cut.valid_bytes;
        if (::ftruncate(fd_, static_cast<off_t>(cut.valid_bytes)) != 0) {
          io_fail(tail_path, "ftruncate", "truncate of torn tail failed");
        }
        if (::fsync(fd_) != 0) io_fail(tail_path, "fsync", "fsync failed");
        repaired = true;
      }
    } catch (...) {
      ::close(fd_);
      fd_ = -1;
      throw;
    }
  }

  std::uint64_t total = 0;
  for (const LiveSegment& seg : segments_) total += seg.bytes;
  committed_bytes_.store(total, std::memory_order_relaxed);
  segment_count_.store(segments_.size(), std::memory_order_relaxed);

  if (repaired || !scan.manifest_ok) {
    std::vector<std::uint64_t> seqs;
    for (const LiveSegment& seg : segments_) seqs.push_back(seg.seq);
    write_manifest(path_, seqs);
  }
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

std::uint64_t Journal::current_segment() const {
  const util::OrderedLock lock(mutex_);
  return segments_.back().seq;
}

std::uint64_t Journal::oldest_segment() const {
  const util::OrderedLock lock(mutex_);
  return segments_.front().seq;
}

std::size_t Journal::records_from_segment(std::uint64_t seq) const {
  const util::OrderedLock lock(mutex_);
  for (const LiveSegment& seg : segments_) {
    if (seg.seq >= seq) return seg.first_record;
  }
  return records_.size();
}

void Journal::roll_segment() {
  const util::OrderedLock lock(mutex_);
  roll_locked();
}

void Journal::roll_locked() {
  // Models kill -9 between "snapshot decided" and "fresh segment
  // exists": the journal must recover with the old segment still
  // active.
  MUSK_FAULT_HIT("segment.roll");
  const std::uint64_t next_seq = segments_.back().seq + 1;
  const std::string next_path = segment_path(path_, next_seq);
  const int nfd =
      ::open(next_path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (nfd < 0) io_fail(next_path, "open", "open of new segment failed");
  try {
    write_all(nfd, next_path, kHeader, kHeaderBytes);
    if (::fsync(nfd) != 0) io_fail(next_path, "fsync", "fsync failed");
  } catch (...) {
    ::close(nfd);
    ::unlink(next_path.c_str());
    throw;
  }
  fsync_parent_dir(path_);
  ::close(fd_);
  fd_ = nfd;
  segments_.push_back(LiveSegment{next_seq, kHeaderBytes, records_.size()});
  segment_count_.store(segments_.size(), std::memory_order_relaxed);
  committed_bytes_.fetch_add(kHeaderBytes, std::memory_order_relaxed);
  MUSK_OBS_COUNT("svc.journal.segment_rolls_total", 1);
  write_manifest_locked();
}

void Journal::write_manifest_locked() {
  std::vector<std::uint64_t> seqs;
  seqs.reserve(segments_.size());
  for (const LiveSegment& seg : segments_) seqs.push_back(seg.seq);
  write_manifest(path_, seqs);
}

std::size_t Journal::compact_below(std::uint64_t seq_bound) {
  const util::OrderedLock lock(mutex_);
  std::size_t removed = 0;
  while (segments_.size() > 1 && segments_.front().seq < seq_bound) {
    // Models kill -9 after the snapshot rename but before (or during)
    // compaction: both the snapshot and the pre-compaction segments
    // survive, and recovery must prefer the snapshot.
    MUSK_FAULT_HIT("compact.unlink");
    const LiveSegment seg = segments_.front();
    const std::string seg_file = segment_path(path_, seg.seq);
    if (::unlink(seg_file.c_str()) != 0 && errno != ENOENT) {
      io_fail(seg_file, "unlink", "unlink of compacted segment failed");
    }
    committed_bytes_.fetch_sub(seg.bytes, std::memory_order_relaxed);
    segments_.erase(segments_.begin());
    ++removed;
  }
  if (removed > 0) {
    segment_count_.store(segments_.size(), std::memory_order_relaxed);
    // No directory fsync for the unlinks: if a crash resurrects a
    // compacted segment, the chain just regrows a contiguous prefix
    // below the snapshot bound — recovery skips it (the snapshot wins)
    // and the next checkpoint removes it again. Durability of *freeing*
    // space is not a correctness property.
    MUSK_OBS_COUNT("svc.journal.segments_compacted_total",
                   static_cast<std::uint64_t>(removed));
    write_manifest_locked();
  }
  return removed;
}

void Journal::append_begin(int epoch, std::uint64_t pre_digest) {
  append(RecordType::kBegin, epoch, pre_digest, std::string());
}

void Journal::append_begin(int epoch, std::uint64_t pre_digest,
                           const SeqWatermarks& drained) {
  append(RecordType::kBegin, epoch, pre_digest, encode_watermarks(drained));
}

void Journal::append_outcome(int epoch, std::uint64_t pre_digest,
                             const core::Outcome& outcome) {
  std::string payload;
  core::codec::encode_outcome(outcome, payload);
  append(RecordType::kOutcome, epoch, pre_digest, payload);
}

void Journal::append_settled(int epoch, std::uint64_t post_digest) {
  append(RecordType::kSettled, epoch, post_digest, std::string());
}

void Journal::append_aborted(int epoch, std::uint64_t pre_digest) {
  append(RecordType::kAborted, epoch, pre_digest, std::string());
}

void Journal::append_degraded(int epoch, std::uint64_t pre_digest, int level,
                              const std::string& reason) {
  std::string payload;
  core::codec::put_u8(payload, static_cast<std::uint8_t>(level));
  payload += reason;
  append(RecordType::kDegraded, epoch, pre_digest, payload);
}

namespace {

[[maybe_unused]] const char* record_type_name(RecordType type) {
  switch (type) {
    case RecordType::kBegin: return "begin";
    case RecordType::kOutcome: return "outcome";
    case RecordType::kSettled: return "settled";
    case RecordType::kAborted: return "aborted";
    case RecordType::kDegraded: return "degraded";
  }
  return "unknown";
}

}  // namespace

void Journal::append(RecordType type, int epoch, std::uint64_t digest,
                     const std::string& payload) {
  MUSK_OBS_SPAN(span, "svc.journal_append");
  span.set_detail(record_type_name(type));
  span.set_epoch(static_cast<std::uint64_t>(epoch));
  const util::OrderedLock lock(mutex_);
  if (poisoned_) {
    throw JournalError("journal " + path_ +
                       ": poisoned by earlier fsync failure");
  }
  if (payload.size() > kMaxRecordPayload) {
    throw JournalError("journal " + path_ + ": record payload exceeds cap");
  }
  std::string bytes = encode_record(type, epoch, digest, payload);
  const std::size_t full = bytes.size();
  MUSK_FAULT_MUTATE("journal.write", bytes);
  const bool torn = bytes.size() != full;

  const std::uint64_t seg_off = segments_.back().bytes;
  const std::string seg_file = segment_path(path_, segments_.back().seq);
  if (::lseek(fd_, static_cast<off_t>(seg_off), SEEK_SET) < 0) {
    io_fail(seg_file, "lseek", "seek failed");
  }
  if (MUSK_FAULT_FAIL("disk.full")) {
    // Simulated ENOSPC mid-record: half the bytes land, then the disk
    // is full. The committed prefix must be restored — a partial record
    // surviving as "data" would be a silent torn write.
    write_all(fd_, seg_file, bytes.data(), bytes.size() / 2);
    if (::ftruncate(fd_, static_cast<off_t>(seg_off)) != 0) {
      poisoned_ = true;
      throw JournalError("journal " + path_ +
                         ": write and truncate both failed; journal poisoned");
    }
    ::fsync(fd_);
    errno = ENOSPC;
    io_fail(seg_file, "write", "write failed");
  }
  try {
    write_all(fd_, seg_file, bytes.data(), bytes.size());
  } catch (const JournalError&) {
    // Real short write (ENOSPC, EROFS, ...): scrub the partial record
    // so the committed prefix stays the durable truth, then surface
    // the structured error. If even the scrub fails, poison the
    // journal — nothing may append after an unknown partial write.
    if (::ftruncate(fd_, static_cast<off_t>(seg_off)) != 0) poisoned_ = true;
    throw;
  }
  if (torn) {
    // A drop/truncate fault left a partial record on disk, exactly like
    // a crash mid-write; make it durable so recovery sees the torn tail.
    ::fsync(fd_);
    throw util::fault::CrashPoint("torn write in journal " + path_);
  }
  if (MUSK_FAULT_FAIL("journal.fsync") || ::fsync(fd_) != 0) {
    // The record reached the page cache but is not durable. It must not
    // resurface on replay (the service will abort this epoch), so cut
    // the file back to the committed prefix before reporting failure.
    if (::ftruncate(fd_, static_cast<off_t>(seg_off)) != 0) {
      poisoned_ = true;
      throw JournalError("journal " + path_ +
                         ": fsync and truncate both failed; journal poisoned");
    }
    throw JournalError("journal " + path_ + ": fsync failed", "fsync", EIO);
  }
  segments_.back().bytes += full;
  committed_bytes_.fetch_add(full, std::memory_order_relaxed);
  MUSK_OBS_COUNT("svc.journal.append_total", 1);
  MUSK_OBS_HISTOGRAM("svc.journal.append_seconds", span.end());
  JournalRecord record;
  record.type = type;
  record.epoch = epoch;
  record.digest = digest;
  record.payload = payload;
  records_.push_back(std::move(record));

  // Size-based auto-roll, at epoch boundaries only so an epoch's
  // records never straddle segments. The record above is already
  // durable, so a failed roll is reported but never fatal — the
  // segment just keeps growing until the next boundary.
  if (config_.max_segment_bytes > 0 &&
      (type == RecordType::kSettled || type == RecordType::kAborted) &&
      segments_.back().bytes >= config_.max_segment_bytes) {
    try {
      roll_locked();
    } catch (const util::fault::CrashPoint&) {
      throw;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "musketeer: journal %s: segment roll failed: %s\n",
                   path_.c_str(), e.what());
    }
  }
}

RecoveryReport replay_records(Journal& journal, pcn::Network& network,
                              const pcn::RebalancePolicy& policy,
                              std::size_t first_record, RecoveryReport seed) {
  RecoveryReport report = std::move(seed);
  enum class Phase { kIdle, kBegun, kCommitted };
  Phase phase = Phase::kIdle;
  int current = 0;

  // Watermarks of committed epochs only: a BEGIN's drained seqs become
  // durable at its OUTCOME. Bids drained into a rolled-back or aborted
  // epoch had no effect, so their seqs must stay resubmittable.
  std::map<core::PlayerId, std::uint32_t> marks(report.watermarks.begin(),
                                                report.watermarks.end());
  SeqWatermarks pending_marks;
  const auto commit_marks = [&marks](const SeqWatermarks& pending) {
    for (const auto& [player, seq] : pending) {
      std::uint32_t& have = marks[player];
      have = std::max(have, seq);
    }
  };

  const auto check_digest = [&](const JournalRecord& r, const char* when) {
    const std::uint64_t have = network.state_digest();
    if (r.digest != have) {
      throw JournalError(
          "journal " + journal.path() + ": digest mismatch at epoch " +
          std::to_string(r.epoch) + " (" + when + "): journal " +
          std::to_string(r.digest) + " vs network " + std::to_string(have) +
          " — wrong genesis network for this journal?");
    }
  };

  // Iterate by index over the records present at entry: closing an
  // in-flight epoch appends to the journal below, after the scan.
  const std::size_t n = journal.records().size();
  for (std::size_t i = first_record; i < n; ++i) {
    const JournalRecord& r = journal.records()[i];
    switch (r.type) {
      case RecordType::kBegin:
        if (phase == Phase::kCommitted) {
          throw JournalError("journal " + journal.path() +
                             ": BEGIN while epoch " + std::to_string(current) +
                             " is committed but unsettled");
        }
        // A BEGIN on top of a BEGIN: the earlier epoch died before its
        // outcome committed. Its locks lived only in the dead process.
        if (phase == Phase::kBegun) ++report.rolled_back;
        check_digest(r, "begin");
        phase = Phase::kBegun;
        current = r.epoch;
        report.next_epoch = r.epoch;
        pending_marks = decode_watermarks(r.payload);
        break;
      case RecordType::kOutcome: {
        if (phase != Phase::kBegun || r.epoch != current) {
          throw JournalError("journal " + journal.path() +
                             ": OUTCOME without matching BEGIN at epoch " +
                             std::to_string(r.epoch));
        }
        check_digest(r, "outcome");
        // Extraction from the digest-verified pre-state is deterministic,
        // so the stored outcome's edge indices line up with this game.
        pcn::ExtractedGame extracted = pcn::extract_and_lock(network, policy);
        const core::Outcome outcome =
            core::codec::outcome_from_bytes(r.payload);
        pcn::apply_outcome(network, extracted, outcome);
        commit_marks(pending_marks);
        pending_marks.clear();
        phase = Phase::kCommitted;
        break;
      }
      case RecordType::kSettled:
        if (phase == Phase::kIdle || r.epoch != current) {
          throw JournalError("journal " + journal.path() +
                             ": SETTLED without matching BEGIN at epoch " +
                             std::to_string(r.epoch));
        }
        check_digest(r, "settled");
        // Empty epochs journal BEGIN -> SETTLED with no OUTCOME, yet the
        // drained seqs were still consumed — commit here too (a second
        // commit after kOutcome is a no-op: pending is already empty).
        commit_marks(pending_marks);
        pending_marks.clear();
        ++report.epochs_settled;
        phase = Phase::kIdle;
        report.next_epoch = current + 1;
        break;
      case RecordType::kDegraded:
        if (phase != Phase::kBegun || r.epoch != current) {
          throw JournalError("journal " + journal.path() +
                             ": DEGRADED without matching BEGIN at epoch " +
                             std::to_string(r.epoch));
        }
        // Annotation only: the failed attempt was rolled back before the
        // record was written, so the network still sits at the epoch's
        // pre-state. The record exists so replay can prove the degraded
        // outcome came from the documented ladder, not silent drift.
        check_digest(r, "degraded");
        ++report.degraded_epochs;
        break;
      case RecordType::kAborted:
        if (phase != Phase::kBegun || r.epoch != current) {
          throw JournalError("journal " + journal.path() +
                             ": ABORTED without matching BEGIN at epoch " +
                             std::to_string(r.epoch));
        }
        // The service released the locks before writing the record, so
        // the network is back at the pre-state; the epoch number is
        // reused by the next clear.
        check_digest(r, "aborted");
        ++report.aborted_epochs;
        pending_marks.clear();
        phase = Phase::kIdle;
        report.next_epoch = current;
        break;
    }
  }

  if (phase == Phase::kBegun) {
    // Dangling BEGIN: crash before commit. Nothing durable happened.
    ++report.rolled_back;
    report.next_epoch = current;
  } else if (phase == Phase::kCommitted) {
    // Crash between commit and settle (or mid-settle): the outcome was
    // applied exactly once above; close the epoch durably so a second
    // recovery replays SETTLED instead of re-detecting the in-flight
    // tail.
    report.applied_inflight = true;
    ++report.epochs_settled;
    journal.append_settled(current, network.state_digest());
    report.next_epoch = current + 1;
  }
  report.final_digest = network.state_digest();
  report.watermarks.assign(marks.begin(), marks.end());
  return report;
}

RecoveryReport replay_journal(Journal& journal, pcn::Network& network,
                              const pcn::RebalancePolicy& policy) {
  if (journal.oldest_segment() != 0) {
    throw JournalError(
        "journal " + journal.path() + ": segments before " +
        std::to_string(journal.oldest_segment()) +
        " were compacted away; replay from genesis is impossible — recover "
        "from a snapshot (svc::recover) instead");
  }
  return replay_records(journal, network, policy, 0, RecoveryReport{});
}

}  // namespace musketeer::svc
