#include "svc/bid_queue.hpp"

#include <algorithm>
#include <cmath>

#include "util/ordered_mutex.hpp"

namespace musketeer::svc {

const char* to_string(IntakeStatus status) {
  switch (status) {
    case IntakeStatus::kAccepted: return "accepted";
    case IntakeStatus::kReplaced: return "replaced";
    case IntakeStatus::kRejectedFull: return "rejected-full";
    case IntakeStatus::kRejectedInvalid: return "rejected-invalid";
    case IntakeStatus::kRejectedClosed: return "rejected-closed";
    case IntakeStatus::kDuplicate: return "duplicate";
    case IntakeStatus::kRejectedOverload: return "rejected-overload";
  }
  return "unknown";
}

namespace {

bool valid_bid(const BidSubmission& bid, core::PlayerId num_players) {
  if (bid.player < 0 || bid.player >= num_players) return false;
  if (bid.has_tail &&
      (!std::isfinite(bid.tail_bid) || bid.tail_bid > 0.0 ||
       bid.tail_bid <= -core::kMaxFeeRate)) {
    return false;
  }
  if (bid.has_head &&
      (!std::isfinite(bid.head_bid) || bid.head_bid < 0.0 ||
       bid.head_bid >= core::kMaxFeeRate)) {
    return false;
  }
  return true;
}

}  // namespace

BidQueue::BidQueue(std::size_t capacity, core::PlayerId num_players)
    : capacity_(capacity), num_players_(num_players) {}

IntakeStatus BidQueue::submit(const BidSubmission& bid) {
  if (!valid_bid(bid, num_players_)) {
    const util::OrderedLock lock(mutex_);
    ++counters_.rejected_invalid;
    return IntakeStatus::kRejectedInvalid;
  }
  const util::OrderedLock lock(mutex_);
  if (closed_) {
    ++counters_.rejected_closed;
    return IntakeStatus::kRejectedClosed;
  }
  if (bid.seq != 0) {
    const auto seq_it = last_seq_.find(bid.player);
    if (seq_it != last_seq_.end() && bid.seq <= seq_it->second) {
      // A resubmission of something already taken (possibly drained
      // into an epoch long ago). The earlier copy stands; acking
      // kDuplicate tells the retrying client its bid landed.
      ++counters_.duplicate;
      return IntakeStatus::kDuplicate;
    }
  }
  const auto it = index_.find(bid.player);
  if (it != index_.end()) {
    pending_[it->second] = bid;
    if (bid.seq != 0) last_seq_[bid.player] = bid.seq;
    ++counters_.replaced;
    return IntakeStatus::kReplaced;
  }
  if (pending_.size() >= capacity_) {
    ++counters_.rejected_full;
    return IntakeStatus::kRejectedFull;
  }
  index_.emplace(bid.player, pending_.size());
  pending_.push_back(bid);
  high_watermark_ = std::max(high_watermark_, pending_.size());
  if (bid.seq != 0) last_seq_[bid.player] = bid.seq;
  ++counters_.accepted;
  return IntakeStatus::kAccepted;
}

std::vector<BidSubmission> BidQueue::drain() {
  std::vector<BidSubmission> out;
  {
    const util::OrderedLock lock(mutex_);
    out.swap(pending_);
    index_.clear();
  }
  std::sort(out.begin(), out.end(),
            [](const BidSubmission& a, const BidSubmission& b) {
              return a.player < b.player;
            });
  return out;
}

void BidQueue::close() {
  const util::OrderedLock lock(mutex_);
  closed_ = true;
}

bool BidQueue::pending(core::PlayerId player) const {
  const util::OrderedLock lock(mutex_);
  return index_.contains(player);
}

void BidQueue::count_overload_rejection() {
  const util::OrderedLock lock(mutex_);
  ++counters_.rejected_overload;
}

std::size_t BidQueue::size() const {
  const util::OrderedLock lock(mutex_);
  return pending_.size();
}

IntakeCounters BidQueue::counters() const {
  const util::OrderedLock lock(mutex_);
  return counters_;
}

std::size_t BidQueue::high_watermark() const {
  const util::OrderedLock lock(mutex_);
  return high_watermark_;
}

void BidQueue::restore_watermarks(
    const std::vector<std::pair<core::PlayerId, std::uint32_t>>& marks) {
  const util::OrderedLock lock(mutex_);
  for (const auto& [player, seq] : marks) {
    if (seq == 0) continue;
    std::uint32_t& have = last_seq_[player];
    have = std::max(have, seq);
  }
}

}  // namespace musketeer::svc
