#include "svc/snapshot.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "core/io.hpp"
#include "obs/obs.hpp"
#include "util/fault.hpp"

namespace musketeer::svc {

namespace {

constexpr char kSnapHeader[] = "MUSKSNP1";
constexpr std::size_t kSnapHeaderBytes = 8;
constexpr std::size_t kChecksumBytes = 8;
// Fixed body prefix: next_epoch + digest + first_segment + shed_level +
// ewma + watermark count (the variable parts follow).
constexpr std::size_t kMinBodyBytes = 4 + 8 + 8 + 4 + 8 + 4 + 8;
// Bytes per encoded channel in encode_network.
constexpr std::size_t kChannelBytes = 4 + 4 + 8 + 8 + 8 + 8 + 8 + 8 + 1;

std::uint64_t fnv1a(const char* data, std::size_t n) {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t load_u64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

[[noreturn]] void io_fail(const std::string& path, const char* op,
                          const char* what) {
  const int saved = errno;
  throw JournalError(
      "snapshot " + path + ": " + what + ": " + std::strerror(saved), op,
      saved);
}

void write_all(int fd, const std::string& path, const char* data,
               std::size_t n) {
  while (n > 0) {
    const ssize_t wrote = ::write(fd, data, n);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      io_fail(path, "write", "write failed");
    }
    data += wrote;
    n -= static_cast<std::size_t>(wrote);
  }
}

std::string dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

std::string base_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

void fsync_parent_dir(const std::string& path) {
  const int fd =
      ::open(dir_of(path).c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

std::string encode_snapshot(const SnapshotData& data) {
  std::string out(kSnapHeader, kSnapHeaderBytes);
  std::string body;
  core::codec::put_u32(body, static_cast<std::uint32_t>(data.next_epoch));
  core::codec::put_u64(body, data.digest);
  core::codec::put_u64(body, data.first_segment);
  core::codec::put_u32(body, static_cast<std::uint32_t>(data.shed_level));
  core::codec::put_f64(body, data.ewma_seconds);
  core::codec::put_u32(body,
                       static_cast<std::uint32_t>(data.watermarks.size()));
  for (const auto& [player, seq] : data.watermarks) {
    core::codec::put_u32(body, static_cast<std::uint32_t>(player));
    core::codec::put_u32(body, seq);
  }
  core::codec::put_u64(body, data.network_bytes.size());
  body += data.network_bytes;
  out += body;
  core::codec::put_u64(out, fnv1a(body.data(), body.size()));
  return out;
}

}  // namespace

std::string encode_network(const pcn::Network& network) {
  std::string out;
  const auto num_channels = network.num_channels();
  out.reserve(8 + static_cast<std::size_t>(num_channels) * kChannelBytes);
  core::codec::put_u32(out, static_cast<std::uint32_t>(network.num_nodes()));
  core::codec::put_u32(out, static_cast<std::uint32_t>(num_channels));
  for (pcn::ChannelId c = 0; c < num_channels; ++c) {
    const pcn::Channel& ch = network.channel(c);
    core::codec::put_u32(out, static_cast<std::uint32_t>(ch.a));
    core::codec::put_u32(out, static_cast<std::uint32_t>(ch.b));
    core::codec::put_i64(out, ch.balance_a);
    core::codec::put_i64(out, ch.balance_b);
    core::codec::put_f64(out, ch.fee_rate_a);
    core::codec::put_f64(out, ch.fee_rate_b);
    core::codec::put_i64(out, ch.locked_a);
    core::codec::put_i64(out, ch.locked_b);
    core::codec::put_u8(out, ch.disabled ? 1 : 0);
  }
  return out;
}

pcn::Network decode_network(std::string_view bytes) {
  core::codec::Reader in(bytes);
  const auto num_nodes = static_cast<std::int64_t>(in.u32());
  const std::size_t num_channels = in.check_count(in.u32(), kChannelBytes);
  // Every field is range-validated before it reaches the Network
  // mutators: corrupt bytes must surface as CodecError, not as an
  // assertion abort inside add_channel.
  const auto fail = [](const char* what) {
    throw core::CodecError(std::string("snapshot network: ") + what);
  };
  pcn::Network network(static_cast<pcn::NodeId>(num_nodes));
  for (std::size_t c = 0; c < num_channels; ++c) {
    const auto a = static_cast<std::int64_t>(in.u32());
    const auto b = static_cast<std::int64_t>(in.u32());
    const std::int64_t balance_a = in.i64();
    const std::int64_t balance_b = in.i64();
    const double fee_rate_a = in.f64();
    const double fee_rate_b = in.f64();
    const std::int64_t locked_a = in.i64();
    const std::int64_t locked_b = in.i64();
    const std::uint8_t disabled = in.u8();
    if (a >= num_nodes || b >= num_nodes || a == b) {
      fail("channel endpoint out of range");
    }
    if (balance_a < 0 || balance_b < 0) fail("negative balance");
    if (locked_a < 0 || locked_a > balance_a || locked_b < 0 ||
        locked_b > balance_b) {
      fail("locked amount out of range");
    }
    if (!std::isfinite(fee_rate_a) || !std::isfinite(fee_rate_b) ||
        fee_rate_a < 0.0 || fee_rate_b < 0.0) {
      fail("bad fee rate");
    }
    if (disabled > 1) fail("bad disabled flag");
    const pcn::ChannelId id = network.add_channel(
        static_cast<pcn::NodeId>(a), static_cast<pcn::NodeId>(b), balance_a,
        balance_b, fee_rate_a, fee_rate_b);
    pcn::Channel& ch = network.channel(id);
    ch.locked_a = locked_a;
    ch.locked_b = locked_b;
    ch.disabled = disabled != 0;
  }
  in.expect_end();
  return network;
}

std::string snapshot_path(const std::string& base_path, std::uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof buf, ".snap.%06llu",
                static_cast<unsigned long long>(seq));
  return base_path + buf;
}

std::vector<std::uint64_t> list_snapshots(const std::string& base_path) {
  std::vector<std::uint64_t> seqs;
  const std::string dir = dir_of(base_path);
  const std::string prefix = base_of(base_path) + ".snap.";
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return seqs;
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() != prefix.size() + 6) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    bool digits = true;
    std::uint64_t seq = 0;
    for (std::size_t i = prefix.size(); i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') {
        digits = false;
        break;
      }
      seq = seq * 10 + static_cast<std::uint64_t>(name[i] - '0');
    }
    if (digits) seqs.push_back(seq);
  }
  ::closedir(d);
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

bool SnapshotStore::read_file(const std::string& file_path, SnapshotData* out,
                              std::string* error) {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  std::string buf;
  {
    const int fd = ::open(file_path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return fail("open failed: " + std::string(strerror(errno)));
    char chunk[4096];
    for (;;) {
      const ssize_t got = ::read(fd, chunk, sizeof chunk);
      if (got < 0) {
        if (errno == EINTR) continue;
        const std::string why = strerror(errno);
        ::close(fd);
        return fail("read failed: " + why);
      }
      if (got == 0) break;
      buf.append(chunk, static_cast<std::size_t>(got));
    }
    ::close(fd);
  }
  if (buf.size() < kSnapHeaderBytes + kMinBodyBytes + kChecksumBytes) {
    return fail("truncated snapshot");
  }
  if (std::memcmp(buf.data(), kSnapHeader, kSnapHeaderBytes) != 0) {
    return fail("bad snapshot header");
  }
  const char* body = buf.data() + kSnapHeaderBytes;
  const std::size_t body_len =
      buf.size() - kSnapHeaderBytes - kChecksumBytes;
  if (fnv1a(body, body_len) != load_u64(body + body_len)) {
    return fail("snapshot checksum mismatch");
  }

  SnapshotData data;
  try {
    core::codec::Reader in(std::string_view(body, body_len));
    data.next_epoch = static_cast<int>(in.u32());
    data.digest = in.u64();
    data.first_segment = in.u64();
    data.shed_level = static_cast<int>(in.u32());
    data.ewma_seconds = in.f64();
    const std::size_t marks = in.check_count(in.u32(), 8);
    data.watermarks.reserve(marks);
    for (std::size_t i = 0; i < marks; ++i) {
      const auto player = static_cast<core::PlayerId>(in.u32());
      const std::uint32_t seq = in.u32();
      data.watermarks.emplace_back(player, seq);
    }
    const std::uint64_t net_len = in.u64();
    if (net_len != in.remaining()) {
      return fail("snapshot network length mismatch");
    }
    data.network_bytes.assign(body + body_len - in.remaining(),
                              in.remaining());
    // End-to-end validation: the network must decode *and* hash to the
    // digest stored beside it. A checksum-intact snapshot whose state
    // drifted (software bug, partial overwrite missed by FNV) is
    // rejected exactly like a torn one.
    const pcn::Network network = decode_network(data.network_bytes);
    if (network.state_digest() != data.digest) {
      return fail("snapshot digest mismatch");
    }
    if (!std::isfinite(data.ewma_seconds) || data.ewma_seconds < 0.0) {
      return fail("bad ewma");
    }
    if (data.next_epoch < 0 || data.shed_level < 0) {
      return fail("bad counters");
    }
  } catch (const core::CodecError& e) {
    return fail(e.what());
  }
  if (out != nullptr) *out = std::move(data);
  if (error != nullptr) error->clear();
  return true;
}

SnapshotStore::SnapshotStore(std::string base_path, int keep)
    : path_(std::move(base_path)), keep_(std::max(1, keep)) {
  for (const std::uint64_t seq : list_snapshots(path_)) {
    Entry entry;
    entry.seq = seq;
    entry.path = snapshot_path(path_, seq);
    SnapshotData data;
    entry.valid = read_file(entry.path, &data, nullptr);
    if (entry.valid) {
      entry.first_segment = data.first_segment;
      entry.next_epoch = data.next_epoch;
    }
    entries_.push_back(std::move(entry));
  }
}

void SnapshotStore::write(const SnapshotData& data) {
  MUSK_OBS_SPAN(span, "svc.snapshot_write");
  span.set_epoch(static_cast<std::uint64_t>(data.next_epoch));
  const std::uint64_t seq = entries_.empty() ? 0 : entries_.back().seq + 1;
  const std::string dest = snapshot_path(path_, seq);
  const std::string tmp = path_ + ".snap.tmp";

  std::string bytes = encode_snapshot(data);
  const std::uint64_t pristine = fnv1a(bytes.data(), bytes.size());
  const std::size_t pristine_size = bytes.size();
  MUSK_FAULT_MUTATE("snapshot.write", bytes);
  // A mutation fault models bits rotting on the way to disk: the
  // corrupt snapshot is *published* (the writer cannot tell) and the
  // process then dies — recovery must detect it and fall back.
  const bool mutated = bytes.size() != pristine_size ||
                       fnv1a(bytes.data(), bytes.size()) != pristine;

  if (MUSK_FAULT_FAIL("disk.full")) {
    // Simulated ENOSPC mid-snapshot: a partial tmp file exists, then
    // the write errors out. The tmp is scrubbed and the error surfaces
    // structurally; the previous snapshots and the journal are never
    // touched.
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd >= 0) {
      write_all(fd, tmp, bytes.data(), bytes.size() / 2);
      ::close(fd);
    }
    ::unlink(tmp.c_str());
    errno = ENOSPC;
    io_fail(dest, "write", "write failed");
  }

  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) io_fail(tmp, "open", "open failed");
  try {
    write_all(fd, tmp, bytes.data(), bytes.size());
    if (::fsync(fd) != 0) io_fail(tmp, "fsync", "fsync failed");
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  // Crash here leaves only an orphaned tmp the next write overwrites.
  MUSK_FAULT_HIT("snapshot.rename");
  if (::rename(tmp.c_str(), dest.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    errno = saved;
    io_fail(dest, "rename", "rename failed");
  }
  fsync_parent_dir(dest);
  if (mutated) {
    // Die before pruning anything: the corrupt snapshot is on disk and
    // the older, still-valid ones must survive for recovery to find.
    throw util::fault::CrashPoint("corrupt snapshot published at " + dest);
  }

  Entry entry;
  entry.seq = seq;
  entry.path = dest;
  entry.valid = true;
  entry.first_segment = data.first_segment;
  entry.next_epoch = data.next_epoch;
  entries_.push_back(std::move(entry));

  // Prune beyond the retention bound, oldest first. The newest
  // snapshot is durable, so losing the old ones costs only fallback
  // depth.
  while (entries_.size() > static_cast<std::size_t>(keep_)) {
    if (::unlink(entries_.front().path.c_str()) != 0 && errno != ENOENT) {
      io_fail(entries_.front().path, "unlink", "unlink failed");
    }
    entries_.erase(entries_.begin());
  }
  MUSK_OBS_COUNT("svc.snapshot.total", 1);
  MUSK_OBS_HISTOGRAM("svc.snapshot.write_seconds", span.end());
}

std::uint64_t SnapshotStore::oldest_retained_first_segment() const {
  if (entries_.empty()) return 0;
  std::uint64_t oldest = UINT64_MAX;
  for (const Entry& entry : entries_) {
    // An invalid snapshot pins segment 0: its reader will fall back to
    // an older snapshot or genesis, which needs the longer tail.
    oldest = std::min(oldest, entry.valid ? entry.first_segment : 0);
  }
  return oldest;
}

RecoveryReport recover(Journal& journal, const SnapshotStore& snapshots,
                       pcn::Network& network,
                       const pcn::RebalancePolicy& policy) {
  int discarded = 0;
  const auto& entries = snapshots.entries();
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    SnapshotData data;
    std::string error;
    if (!it->valid || !SnapshotStore::read_file(it->path, &data, &error)) {
      ++discarded;
      continue;
    }
    network = decode_network(data.network_bytes);
    RecoveryReport seed;
    seed.from_snapshot = true;
    seed.snapshot_epoch = data.next_epoch;
    seed.snapshots_discarded = discarded;
    seed.next_epoch = data.next_epoch;
    seed.watermarks = data.watermarks;
    seed.ewma_seconds = data.ewma_seconds;
    seed.shed_level = data.shed_level;
    const std::uint64_t tail_start =
        std::max(journal.oldest_segment(), data.first_segment);
    seed.segments_replayed =
        static_cast<int>(journal.current_segment() - tail_start + 1);
    const std::size_t first = journal.records_from_segment(data.first_segment);
    return replay_records(journal, network, policy, first, seed);
  }

  // No usable snapshot: genesis replay, which needs the full history.
  if (journal.oldest_segment() != 0) {
    throw JournalError(
        "journal " + journal.path() + ": no valid snapshot and segments "
        "before " + std::to_string(journal.oldest_segment()) +
        " were compacted away — recovery is impossible");
  }
  RecoveryReport seed;
  seed.snapshots_discarded = discarded;
  RecoveryReport report =
      replay_records(journal, network, policy, 0, std::move(seed));
  report.segments_replayed = static_cast<int>(journal.segment_count());
  return report;
}

}  // namespace musketeer::svc
