// The epoch-batched rebalancing service: intake -> snapshot -> clear ->
// settle.
//
// A RebalanceService turns the repo's one-shot mechanism calls into a
// long-running auction server over a live pcn::Network:
//
//   1. intake   — clients submit BidSubmissions concurrently through the
//                 bounded BidQueue (newest-per-player wins, §bid_queue);
//   2. snapshot — at the epoch boundary the scheduler atomically drains
//                 the queue and, under the network mutex, runs
//                 pcn::extract_and_lock: the game's capacities are
//                 HTLC-locked, so the extracted Game is a self-contained
//                 value snapshot whose outcome stays executable no
//                 matter what payments hit the network while clearing;
//   3. clear    — the mechanism runs on the scheduler thread, *off* the
//                 network mutex, against truthful valuations overridden
//                 by the drained bids;
//   4. settle   — apply_outcome executes every priced cycle atomically
//                 under the network mutex and releases leftover locks
//                 (on mechanism failure all locks are released).
//
// Ordering guarantee: a submission acked with intake epoch E is applied
// to exactly the first epoch cleared after its intake (i.e. epoch >= E),
// unless the same player replaced it first.
//
// The service runs epochs either manually (run_epoch(), used by the sim
// backend and tests) or periodically on an internal scheduler thread
// (start()/stop(), used by musketeerd). Epoch completion is observable
// via registered callbacks (socket broadcast) and wait_epochs().
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/mechanism.hpp"
#include "obs/trace.hpp"
#include "pcn/network.hpp"
#include "pcn/rebalancer.hpp"
#include "svc/admission.hpp"
#include "svc/bid_queue.hpp"
#include "svc/executor.hpp"
#include "svc/journal.hpp"
#include "util/deadline.hpp"
#include "util/ordered_mutex.hpp"
#include "util/thread_annotations.hpp"

namespace musketeer::svc {

class SnapshotStore;

struct ServiceConfig {
  pcn::RebalancePolicy policy;
  /// Max distinct players pending in the intake queue.
  std::size_t queue_capacity = 1024;
  /// Period of the internal scheduler (periodic mode only; manual
  /// run_epoch() ignores it).
  std::chrono::milliseconds epoch_period{100};
  /// Periodic mode stops itself after this many epochs (0 = run until
  /// stop()).
  int max_epochs = 0;
  /// Optional write-ahead journal (borrowed; must outlive the service).
  /// When set, every epoch is journaled BEGIN -> OUTCOME -> SETTLED with
  /// the OUTCOME fsync'd before settlement, so a crashed daemon recovers
  /// via replay_journal. A journal append failure aborts the epoch
  /// (locks released) and propagates — the service must not keep
  /// settling epochs it cannot make durable.
  Journal* journal = nullptr;
  /// Epoch number of the first epoch this service clears. Recovery sets
  /// it to RecoveryReport::next_epoch so epoch numbering continues
  /// seamlessly across a restart.
  int first_epoch = 0;
  /// Solve concurrency: worker threads (including the clearing thread)
  /// the epoch solve fans component tasks out across. 0 = hardware
  /// concurrency; 1 = the literal legacy whole-graph path (no
  /// partitioning, no pool). Outcomes are bit-identical at any value —
  /// see DESIGN.md §13.
  int threads = 0;
  /// Per-attempt clearing deadline (0 = disabled, the legacy run-to-
  /// completion behavior). When an attempt's solve exceeds it, the solve
  /// is cooperatively cancelled (util::CancelToken through the flow
  /// layer) and the epoch retries down `degradation_ladder`; once the
  /// ladder is exhausted the epoch is journaled ABORTED, its locks are
  /// released, and its number is reused — run_epoch returns a report
  /// flagged `aborted` instead of throwing. See DESIGN.md §14.
  std::chrono::milliseconds epoch_deadline{0};
  /// Mechanism names (core::make_mechanism spelling) tried in order
  /// after the primary mechanism times out, cheapest last. Each rung is
  /// journaled as a DEGRADED record so replay reproduces the degraded
  /// outcome bit for bit. Unknown names throw at construction.
  std::vector<std::string> degradation_ladder{"m2-minfee", "m1"};
  /// Watchdog force-cancel timeout (0 = no watchdog thread). A daemon
  /// backstop for an attempt that fails to observe its own deadline:
  /// once an attempt has run this long, the watchdog thread fires the
  /// cancel token from outside. Set it comfortably above epoch_deadline.
  std::chrono::milliseconds watchdog_timeout{0};
  /// EWMA smoothing factor for the overload admission controller
  /// (weight of the newest epoch; 0 disables admission control). The
  /// controller is active only when epoch_deadline is set.
  double admission_alpha = 0.2;
  /// Checkpointing (DESIGN.md §15): after every `snapshot_every`
  /// settled epochs the service rolls the journal to a fresh segment,
  /// writes a snapshot of the full recovery state, and compacts away
  /// the segments no retained snapshot needs. Requires both `journal`
  /// and `snapshots`; 0 disables checkpointing. A failed checkpoint is
  /// reported but never fatal — the epoch it followed is already
  /// durable in the journal.
  int snapshot_every = 0;
  /// Snapshot store beside the journal (borrowed; must outlive the
  /// service). nullptr disables checkpointing.
  SnapshotStore* snapshots = nullptr;
  /// Recovered intake watermarks (RecoveryReport::watermarks): seeds
  /// duplicate detection and the committed-watermark set the next
  /// snapshot captures.
  SeqWatermarks initial_watermarks;
  /// Recovered admission EWMA (RecoveryReport::ewma_seconds): a
  /// restarted overloaded daemon resumes shedding instead of re-warming
  /// from zero.
  double initial_ewma_seconds = 0.0;
};

/// Per-player settlement notification for one epoch: what the node pays
/// or receives and which cycles moved its liquidity.
struct PlayerNotice {
  core::PlayerId player = 0;
  /// Net price across the epoch's cycles (>0 pays, <0 receives).
  double price = 0.0;
  /// Cycles of this epoch the player participated in.
  int cycles = 0;
  /// Total flow of those cycles.
  flow::Amount volume = 0;
  double delay_bonus = 0.0;
};

/// Lock-free service state snapshot for the kStatsRequest endpoint and
/// musk_stats: everything here is readable while an epoch clears.
struct ServiceStats {
  int epochs_cleared = 0;
  double uptime_seconds = 0.0;
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::size_t queue_high_watermark = 0;
  /// Committed journal bytes (0 when running without a journal).
  std::uint64_t journal_bytes = 0;
  /// Pickhardt-style network imbalance, refreshed at each settle (0
  /// before the first epoch): Gini coefficient and mean of the
  /// per-channel imbalances.
  double imbalance_gini = 0.0;
  double imbalance_mean = 0.0;
  /// Solve concurrency the service was configured with (resolved: never
  /// 0) and the last epoch's component shape, mirrored from its
  /// EpochReport (0 before the first non-empty epoch).
  int solve_threads = 1;
  int last_components = 0;
  int largest_component = 0;
  /// v5 health fields: overload shed level (0-3), the admission
  /// controller's EWMA of epoch clear time, and the degradation
  /// counters (see DESIGN.md §14).
  int shed_level = 0;
  double ewma_clear_seconds = 0.0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t degraded_epochs = 0;
  std::uint64_t watchdog_fired = 0;
  std::uint64_t aborted_epochs = 0;
  IntakeCounters intake;
  /// v6 checkpoint health: seconds since the last successful snapshot
  /// (-1 = none this process), epochs settled since it, snapshots taken
  /// by this process, and live journal segments (0 without a journal).
  double snapshot_age_seconds = -1.0;
  std::uint64_t epochs_since_snapshot = 0;
  std::uint64_t snapshots_taken = 0;
  std::uint64_t journal_segments = 0;
};

struct EpochReport {
  int epoch = 0;
  /// Distinct player submissions drained into this epoch.
  std::size_t bids_applied = 0;
  int game_edges = 0;
  int cycles_executed = 0;
  flow::Amount rebalanced_volume = 0;
  double fees_paid = 0.0;
  double max_release_time = 0.0;
  /// Wall-clock seconds from queue drain to settled network.
  double clear_seconds = 0.0;
  /// Correlates this report with its spans in a trace file:
  /// (pid << 32) | (epoch + 1). Stable across the epoch's spans, unique
  /// across concurrently-traced daemons. 0 when tracing never ran.
  std::uint64_t trace_id = 0;
  /// Per-phase breakdown of clear_seconds, measured by the epoch
  /// tracer's spans. All 0 when the build compiles observability out
  /// (-DMUSKETEER_OBS=OFF) — clear_seconds itself is always measured.
  double drain_seconds = 0.0;     ///< queue drain
  double snapshot_seconds = 0.0;  ///< extract_and_lock under network mutex
  double solve_seconds = 0.0;     ///< mechanism run (bind+solve+price)
  double settle_seconds = 0.0;    ///< apply_outcome under network mutex
  /// flow::Graph structure (re)builds the clearing solve context
  /// performed for this epoch. The first epoch builds once; in a
  /// quiescent steady state (stable extracted topology) every later
  /// epoch rebinds in place and reports 0 — the zero-rebuild guarantee.
  /// Not part of the wire protocol (local observability only).
  int graph_rebuilds = 0;
  /// Weakly-connected components the epoch's bid graph partitioned into
  /// and the largest component's edge count (1 / game_edges on the
  /// monolithic --threads 1 path; 0 for an empty epoch).
  int solve_components = 0;
  int largest_component = 0;
  /// Degradation ladder rungs this epoch descended before clearing
  /// (0 = the primary mechanism cleared within its deadline). Rung k
  /// means the epoch cleared with degradation_ladder[k-1].
  int degradation_level = 0;
  /// True when the ladder was exhausted: the epoch was journaled
  /// ABORTED, its locks released, and its number will be reused by the
  /// next clear. The report carries no outcome fields.
  bool aborted = false;
  /// True when the watchdog (not the cooperative deadline) forced at
  /// least one of this epoch's attempts to cancel.
  bool watchdog_fired = false;
  /// True when this epoch's settlement was followed by a successful
  /// checkpoint (segment roll + snapshot + compaction).
  bool checkpointed = false;
  /// pcn::Network::state_digest() of the settled network, taken under
  /// the network lock right after settlement: one u64 a client can check
  /// against a local replay to verify it observed the same state.
  std::uint64_t network_digest = 0;
  /// One entry per participating player, sorted by player id.
  std::vector<PlayerNotice> notices;
};

class RebalanceService {
 public:
  /// The service operates on (and synchronizes) the caller's network;
  /// the network must outlive the service.
  RebalanceService(pcn::Network& network, const core::Mechanism& mechanism,
                   ServiceConfig config);
  ~RebalanceService();

  RebalanceService(const RebalanceService&) = delete;
  RebalanceService& operator=(const RebalanceService&) = delete;

  /// Thread-safe bid intake (validated, bounded; see BidQueue).
  IntakeStatus submit(const BidSubmission& bid);

  /// Clears one epoch synchronously on the calling thread. Thread-safe
  /// against intake and concurrent callers (epochs serialize).
  EpochReport run_epoch()
      MUSK_EXCLUDES(clear_mutex_, network_mutex_, reports_mutex_);

  /// Starts the periodic scheduler thread. Callbacks must be registered
  /// before start().
  void start();

  /// Stops the scheduler (idempotent), closes intake, and waits for an
  /// in-flight epoch to finish settling.
  void stop();

  /// Registers an epoch-completion callback, invoked on the clearing
  /// thread after settlement. Must be called before start(); serialized
  /// against manual run_epoch() callers under the epoch lock.
  void on_epoch(std::function<void(const EpochReport&)> callback)
      MUSK_EXCLUDES(clear_mutex_);

  /// Blocks until at least `n` epochs have cleared (or the deadline
  /// passes); returns whether the target was reached.
  bool wait_epochs(int n, std::chrono::milliseconds timeout) const
      MUSK_EXCLUDES(reports_mutex_);

  int epochs_cleared() const MUSK_EXCLUDES(reports_mutex_);
  IntakeCounters intake_counters() const { return queue_.counters(); }
  std::size_t queue_capacity() const { return queue_.capacity(); }
  const pcn::RebalancePolicy& policy() const { return config_.policy; }

  /// Current overload shed level (0-3; 0 with no deadline configured).
  int shed_level() const { return admission_.shed_level(); }

  /// Scales a base kRetryAfter hint by the shed level so clients of a
  /// hot server back off harder (lock-free; called by the socket server
  /// on its shedding paths).
  std::uint32_t retry_after_hint(std::uint32_t base_ms) const {
    return admission_.scale_retry_after(base_ms);
  }

  /// Live service state for the stats endpoint. Safe to call from any
  /// thread at any time: every field comes from an atomic or a
  /// short-critical-section accessor — never the epoch or network lock.
  ServiceStats stats_snapshot() const MUSK_EXCLUDES(reports_mutex_);

  /// All completed epoch reports, oldest first (copy).
  std::vector<EpochReport> reports() const MUSK_EXCLUDES(reports_mutex_);

  /// Copy of the network state under the service lock (tests, status).
  pcn::Network network_snapshot() const MUSK_EXCLUDES(network_mutex_);

 private:
  void scheduler_loop(const std::stop_token& stop)
      MUSK_EXCLUDES(scheduler_mutex_, clear_mutex_);

  /// Watchdog thread body: parks on watchdog_cv_ (rank kWatchdog, below
  /// every service lock) and force-fires the cancel token when an
  /// attempt outlives watchdog_timeout. It communicates with the
  /// clearing thread exclusively through atomics — it never takes a
  /// lock above kWatchdog, so it can never participate in a clearing
  /// deadlock (the condition it exists to break).
  void watchdog_loop(const std::stop_token& stop)
      MUSK_EXCLUDES(watchdog_mutex_);

  /// One mechanism attempt under the armed token; returns false when
  /// the attempt was cancelled (deadline or watchdog), true when
  /// `outcome` holds the cleared result. Any other exception
  /// propagates to run_epoch's abort path unchanged.
  bool run_attempt(const core::Mechanism& mechanism, const core::Game& game,
                   const core::BidVector& bids, std::uint64_t trace_id,
                   EpochReport& report, core::Outcome& outcome)
      MUSK_REQUIRES(clear_mutex_);

  /// Drains + HTLC-locks the epoch's game under the network lock and
  /// reports the pre-extraction digest (what recovery verifies against).
  pcn::ExtractedGame extract_snapshot(std::uint64_t& pre_digest)
      MUSK_EXCLUDES(network_mutex_);

  /// One checkpoint: rolls the journal to a fresh segment, snapshots
  /// the full recovery state, and compacts the segments no retained
  /// snapshot needs. Runs after append_settled when the cadence is due.
  /// CrashPoint (simulated kill -9) propagates; every other failure is
  /// reported and swallowed — the settled epoch is already durable, a
  /// failed checkpoint only lengthens the next recovery's tail.
  void checkpoint(EpochReport& report)
      MUSK_REQUIRES(clear_mutex_) MUSK_EXCLUDES(network_mutex_);

  /// Condition-variable predicate read. The analysis checks a predicate
  /// lambda out of context and cannot see that wait_for re-acquires
  /// reports_mutex_ around every evaluation, so the read lives in this
  /// analysis-exempt helper instead of the lambda body.
  int epochs_cleared_for_wait() const MUSK_NO_THREAD_SAFETY_ANALYSIS {
    return epochs_cleared_;
  }

  const core::Mechanism& mechanism_;
  const ServiceConfig config_;
  /// Degradation ladder, built from config_.degradation_ladder names at
  /// construction (so a typo fails fast, not mid-overload). Tried in
  /// order after the primary mechanism times out.
  std::vector<std::unique_ptr<core::Mechanism>> ladder_;
  BidQueue queue_;
  /// EWMA-driven overload shedding (inert when epoch_deadline is 0).
  AdmissionController admission_;

  /// Serializes epochs so manual and periodic clears cannot interleave.
  /// Rank note: epoch callbacks (socket broadcast) run with this held,
  /// so the server's locks rank *below* it (DESIGN.md §11).
  util::OrderedMutex clear_mutex_{util::LockRank::kService, "svc.clear"};
  /// Worker pool the sharded solve path fans component tasks through
  /// (kExecutor rank — submitted with clear_mutex_ held). Internally
  /// synchronized by its own mutex, so clear_mutex_ does not guard it;
  /// declared before solve_context_, which borrows it.
  ParallelExecutor executor_;  // musk-lint: allow(unguarded-member)
  /// The epoch pipeline's solve context, reused across epochs so a
  /// steady-state clear performs zero flow-graph rebuilds and zero
  /// solver allocations. Owned by the clearing step.
  flow::SolveContext solve_context_ MUSK_GUARDED_BY(clear_mutex_);
  /// Epoch-completion callbacks. Registration is asserted to happen
  /// before start(), but manual run_epoch() callers may race a late
  /// on_epoch(), so the vector itself is guarded by the epoch lock.
  std::vector<std::function<void(const EpochReport&)>> callbacks_
      MUSK_GUARDED_BY(clear_mutex_);
  /// Committed intake watermarks: per player, the highest seq drained
  /// into an epoch that reached its OUTCOME commit point. Seeded from
  /// recovery, merged at each commit (never for rolled-back or aborted
  /// epochs), captured into every snapshot.
  std::unordered_map<core::PlayerId, std::uint32_t> applied_watermarks_
      MUSK_GUARDED_BY(clear_mutex_);

  /// Guards the live network (extraction + settlement + snapshots).
  mutable util::OrderedMutex network_mutex_{util::LockRank::kNetwork,
                                            "svc.network"};
  pcn::Network& network_ MUSK_GUARDED_BY(network_mutex_);

  mutable util::OrderedMutex reports_mutex_{util::LockRank::kReports,
                                            "svc.reports"};
  std::vector<EpochReport> reports_ MUSK_GUARDED_BY(reports_mutex_);
  int epochs_cleared_ MUSK_GUARDED_BY(reports_mutex_);
  mutable util::OrderedCondVar reports_cv_;

  util::OrderedMutex scheduler_mutex_{util::LockRank::kScheduler,
                                      "svc.scheduler"};
  util::OrderedCondVar scheduler_cv_;

  std::jthread scheduler_;
  std::atomic<bool> started_{false};

  /// Epoch cancellation: armed per attempt by the clearing thread;
  /// fired by the attempt's own deadline (via poll) or by the watchdog
  /// from outside. Only the flag inside is shared — see CancelToken.
  util::CancelToken cancel_token_;
  /// Uptime-seconds (uptime_timer_ clock) at which the watchdog fires;
  /// 0 = no attempt in flight. Written by the clearing thread at
  /// attempt start/end, CAS-claimed by the watchdog when it fires.
  std::atomic<double> watchdog_deadline_at_{0.0};
  /// Set by the watchdog when it force-cancelled the current attempt,
  /// cleared by the clearing thread at the next attempt start.
  std::atomic<bool> watchdog_fired_attempt_{false};
  /// Degradation counters, mirrored into ServiceStats lock-free.
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> degraded_total_{0};
  std::atomic<std::uint64_t> watchdog_fired_total_{0};
  std::atomic<std::uint64_t> aborted_epochs_{0};
  util::OrderedMutex watchdog_mutex_{util::LockRank::kWatchdog,
                                     "svc.watchdog"};
  util::OrderedCondVar watchdog_cv_;
  std::jthread watchdog_;

  /// Service start time (uptime for the stats endpoint).
  const obs::Timer uptime_timer_;
  /// Imbalance gauges refreshed under the network lock at each settle;
  /// atomics so stats_snapshot() reads them lock-free.
  std::atomic<double> imbalance_gini_{0.0};
  std::atomic<double> imbalance_mean_{0.0};
  /// Last epoch's component shape, mirrored from its report so
  /// stats_snapshot() stays lock-free.
  std::atomic<int> last_components_{0};
  std::atomic<int> last_largest_component_{0};
  /// Checkpoint health, mirrored lock-free into stats_snapshot():
  /// snapshots taken by this process, epochs settled since the last
  /// one, and the uptime-seconds at which it completed (-1 = never).
  std::atomic<std::uint64_t> snapshots_taken_{0};
  std::atomic<std::uint64_t> epochs_since_snapshot_{0};
  std::atomic<double> last_snapshot_uptime_{-1.0};
};

}  // namespace musketeer::svc
