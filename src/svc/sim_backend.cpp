#include "svc/sim_backend.hpp"

#include "util/assert.hpp"

namespace musketeer::svc {

ServiceBackend::ServiceBackend(const core::Mechanism& mechanism,
                               std::size_t queue_capacity, int threads)
    : mechanism_(mechanism),
      queue_capacity_(queue_capacity),
      threads_(threads) {}

ServiceBackend::~ServiceBackend() = default;

pcn::RebalanceStats ServiceBackend::rebalance(
    pcn::Network& network, const pcn::RebalancePolicy& policy) {
  if (service_ == nullptr) {
    bound_network_ = &network;
    ServiceConfig config;
    config.policy = policy;
    config.queue_capacity = queue_capacity_;
    config.threads = threads_;
    service_ = std::make_unique<RebalanceService>(network, mechanism_,
                                                  config);
  }
  MUSK_ASSERT_MSG(bound_network_ == &network,
                  "ServiceBackend rebound to a different network");
  const EpochReport report = service_->run_epoch();
  pcn::RebalanceStats stats;
  stats.cycles_executed = report.cycles_executed;
  stats.volume = report.rebalanced_volume;
  stats.fees_paid = report.fees_paid;
  stats.max_release_time = report.max_release_time;
  return stats;
}

}  // namespace musketeer::svc
