// Socket front end of the rebalancing service.
//
// One accept thread plus one thread per connection, all jthreads with
// stop-token-aware poll loops (no detach, no naked sleeps — the repo
// lint enforces it). Connections speak the framed protocol in
// svc/wire.hpp: bids are dispatched straight into the service's intake
// queue and acked with the IntakeStatus; after every settled epoch the
// server broadcasts the epoch result to all connections and a targeted
// PlayerNotice to each connection that Hello'd a participating player.
//
// A malformed frame (bad magic, oversized length, truncated record)
// earns the client a best-effort kError frame and a closed connection —
// one bad client never poisons the service.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "svc/service.hpp"
#include "svc/socket_util.hpp"
#include "svc/wire.hpp"
#include "util/ordered_mutex.hpp"
#include "util/thread_annotations.hpp"

namespace musketeer::svc {

struct ServerConfig {
  /// "tcp:<port>" (loopback; 0 = ephemeral) or "unix:<path>".
  std::string listen = "tcp:0";
  /// Accepted connections beyond this are shed: the server sends a
  /// structured kError{kRetryAfter} frame and closes, so a well-behaved
  /// client backs off and retries instead of seeing a silent hangup.
  int max_connections = 64;
  /// Backoff hint carried in the shed frame.
  int shed_retry_after_ms = 200;
};

class SocketServer {
 public:
  /// Registers the epoch-broadcast callback on `service`, so the server
  /// must be constructed (and start()ed) before service.start().
  SocketServer(RebalanceService& service, ServerConfig config);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens, and spawns the accept thread. Throws on bind
  /// failure. After return, endpoint() names the resolved address.
  void start();

  /// Sends kShutdown to every connection, closes all sockets, joins all
  /// threads. Idempotent.
  void stop();

  /// Resolved listen address ("tcp:<real-port>" / "unix:<path>").
  std::string endpoint() const;

  std::size_t connections_accepted() const { return accepted_.load(); }

 private:
  struct Connection {
    int fd = -1;
    /// Player id from this connection's Hello (-1 = none).
    std::atomic<core::PlayerId> player{-1};
    std::atomic<bool> done{false};
    /// Serializes writes to fd (epoch broadcast on the clearing thread
    /// vs. acks on the connection thread). Guards no member — the fd's
    /// read side belongs to the connection thread alone.
    util::OrderedMutex write_mutex{util::LockRank::kConnection,
                                   "server.connection.write"};
    std::jthread thread;
  };

  void accept_loop(const std::stop_token& stop)
      MUSK_EXCLUDES(connections_mutex_);
  void connection_loop(const std::stop_token& stop, Connection* conn);
  void handle_frame(Connection* conn, const Frame& frame);
  void broadcast_epoch(const EpochReport& report)
      MUSK_EXCLUDES(connections_mutex_);
  bool send_frame(Connection* conn, MsgType type, std::string_view payload);
  void prune_finished_locked() MUSK_REQUIRES(connections_mutex_);

  RebalanceService& service_;
  const ServerConfig config_;
  Endpoint endpoint_;
  int listen_fd_ = -1;
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> accepted_{0};

  util::OrderedMutex connections_mutex_{util::LockRank::kServer,
                                        "server.connections"};
  std::vector<std::unique_ptr<Connection>> connections_
      MUSK_GUARDED_BY(connections_mutex_);

  std::jthread accept_thread_;
};

}  // namespace musketeer::svc
