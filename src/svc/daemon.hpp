// Owns one complete musketeerd instance: network + mechanism +
// RebalanceService + SocketServer, wired in the right order (the
// server's epoch-broadcast callback must be registered before the
// scheduler starts). Used by the musketeerd binary and started
// in-process by the end-to-end tests and musk_loadgen --spawn.
#pragma once

#include <memory>
#include <string>

#include "core/mechanism.hpp"
#include "pcn/network.hpp"
#include "svc/journal.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"
#include "svc/snapshot.hpp"

namespace musketeer::svc {

struct DaemonConfig {
  ServiceConfig service;
  ServerConfig server;
  /// When non-empty, open (or create) the epoch journal at this path,
  /// replay it against the passed-in genesis network before the service
  /// starts, and journal every epoch. The passed network must be the
  /// same genesis state the journal was started against (digest-checked
  /// on replay).
  std::string journal_path;
  /// Checkpoint cadence: every N settled epochs the daemon snapshots the
  /// recovered state and compacts journal segments the snapshot covers.
  /// 0 disables checkpointing (journal-only, replay from genesis).
  /// Ignored when journal_path is empty.
  int snapshot_every = 0;
  /// Journal segment size bound: when a segment reaches this many bytes
  /// the journal rolls to a new segment at the next epoch boundary.
  /// 0 = never roll on size (checkpoints still roll once per snapshot).
  std::uint64_t max_segment_bytes = 0;
  /// How many validated snapshots to retain (newest-first); older ones
  /// are unlinked after each successful write. Minimum 1.
  int keep_snapshots = 2;
};

class Daemon {
 public:
  /// Takes ownership of the network and mechanism.
  Daemon(pcn::Network network, std::unique_ptr<core::Mechanism> mechanism,
         DaemonConfig config);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Starts the socket server and, when `periodic_epochs`, the epoch
  /// scheduler. With periodic_epochs = false the caller drives epochs
  /// via service().run_epoch() (tests, manual operation).
  void start(bool periodic_epochs = true);

  /// Stops scheduler then server. Idempotent; also run by the dtor.
  void stop();

  RebalanceService& service() { return *service_; }
  SocketServer& server() { return *server_; }

  /// Resolved listen endpoint (valid after start()).
  std::string endpoint() const { return server_->endpoint(); }

  /// Copy of the current network state under the service lock.
  pcn::Network network_snapshot() const {
    return service_->network_snapshot();
  }

  /// What journal replay recovered at construction (zero-valued when no
  /// journal is configured or the journal was empty).
  const RecoveryReport& recovery() const { return recovery_; }

  /// The epoch journal, or nullptr when none is configured.
  Journal* journal() { return journal_.get(); }

  /// The snapshot store, or nullptr when checkpointing is disabled.
  SnapshotStore* snapshots() { return snapshots_.get(); }

 private:
  pcn::Network network_;
  std::unique_ptr<core::Mechanism> mechanism_;
  /// Declared before service_: the service borrows the journal and the
  /// snapshot store, so both must outlive it (and be destroyed after it).
  std::unique_ptr<Journal> journal_;
  std::unique_ptr<SnapshotStore> snapshots_;
  RecoveryReport recovery_;
  std::unique_ptr<RebalanceService> service_;
  std::unique_ptr<SocketServer> server_;
};

}  // namespace musketeer::svc
