// svc::ParallelExecutor — the repo's one thread pool.
//
// Implements the flow::Executor seam with a fixed pool of workers parked
// on an OrderedCondVar at LockRank::kExecutor. run(count, fn) fans the
// task indices out across the pool and the calling thread, blocks until
// every fn(i) has returned, and rethrows the first task exception after
// the barrier. Design points:
//
//   * The executor lock guards only dispatch bookkeeping (the pending
//     batch, the remaining-task counter, generation). It is NEVER held
//     while a task body runs, so tasks may freely acquire lower-ranked
//     locks (kFaultRegistry, kObsRegistry) — and, because the epoch
//     pipeline calls run() with kService(90) held, kExecutor ranks at 15,
//     below every service-layer lock.
//   * Work-stealing by atomic cursor: tasks are claimed one index at a
//     time from a shared atomic counter, so a worker stuck on the
//     largest component never serializes the small ones behind it. The
//     caller's thread participates too — threads == 1 degenerates to a
//     plain inline loop with no locking at all (the literal legacy
//     path).
//   * Determinism lives in the CALLER, not here: task execution order is
//     unspecified, so callers must write results into disjoint,
//     index-addressed slots and merge in index order (SolveContext and
//     M2Vcg both do). The executor adds no ordering of its own.
//
// This class is the only place in the tree allowed to construct raw
// threads (std::jthread); musk_lint's `raw-thread` rule enforces the
// seam everywhere else.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "flow/executor.hpp"
#include "util/ordered_mutex.hpp"
#include "util/thread_annotations.hpp"

namespace musketeer::svc {

class ParallelExecutor final : public flow::Executor {
 public:
  /// `threads` is the total concurrency including the calling thread;
  /// 0 selects std::thread::hardware_concurrency() (min 1). A pool of
  /// threads - 1 workers is spawned eagerly and parked until run().
  explicit ParallelExecutor(int threads = 0);
  ~ParallelExecutor() override;

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  int concurrency() const override { return threads_; }

  /// Runs fn(0) .. fn(count-1), each exactly once, across the pool and
  /// the calling thread; returns after all complete. Not reentrant and
  /// not thread-safe: one run() at a time, from one submitting thread
  /// (the epoch pipeline's). The first exception a task throws is
  /// rethrown here after the barrier.
  ///
  /// With a cancel token attached (set_cancel) the exactly-once promise
  /// weakens to at-most-once: once the token fires, indices nobody has
  /// claimed yet are skipped and run() throws util::SolveCancelled after
  /// the barrier — the deadline path's fast unwind. Callers treat a
  /// throwing run() as producing no results at all.
  void run(std::size_t count, const std::function<void(std::size_t)>& fn)
      override;

  /// Propagates the epoch's cancel token to the claim loops (atomic;
  /// callable between run()s from the epoch thread, and read by workers
  /// mid-batch). The watchdog fires the token itself, not this.
  void set_cancel(util::CancelToken* token) override {
    cancel_.store(token, std::memory_order_relaxed);
  }

 private:
  void worker_loop(std::stop_token stop);
  /// Claims and runs batch tasks until the cursor is exhausted.
  void drain_batch();

  int threads_ = 1;

  util::OrderedMutex mutex_{util::LockRank::kExecutor, "executor"};
  util::OrderedCondVar wake_;       ///< workers wait for a new generation
  util::OrderedCondVar done_;       ///< submitter waits for inflight == 0
  std::uint64_t generation_ MUSK_GUARDED_BY(mutex_) = 0;
  std::size_t batch_count_ MUSK_GUARDED_BY(mutex_) = 0;
  const std::function<void(std::size_t)>* batch_fn_ MUSK_GUARDED_BY(mutex_) =
      nullptr;
  /// Workers that still owe a drain_batch() pass for this generation.
  int inflight_ MUSK_GUARDED_BY(mutex_) = 0;
  std::exception_ptr first_error_ MUSK_GUARDED_BY(mutex_);
  /// Shared claim cursor — atomic so claiming needs no lock.
  std::atomic<std::size_t> next_task_{0};
  /// Cancel token consulted before each claim (null = never cancel).
  std::atomic<util::CancelToken*> cancel_{nullptr};

  std::vector<std::jthread> workers_;
};

}  // namespace musketeer::svc
