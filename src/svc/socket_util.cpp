#include "svc/socket_util.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/fault.hpp"

namespace musketeer::svc {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("unix socket path empty or too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcp_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

/// Decides whether an existing unix socket path may be unlinked before
/// bind. Unconditional unlinking lets two daemons racing on startup
/// silently steal each other's socket; instead, probe it:
///   * path absent                -> nothing to clean up;
///   * path is not a socket       -> refuse (never unlink a user's file);
///   * connect succeeds           -> a live daemon owns it: refuse, the
///                                   bind caller reports address-in-use;
///   * connect refused / ENOENT   -> stale leftover of a dead process,
///                                   safe to remove.
void remove_stale_unix_socket(const std::string& path) {
  struct stat st{};
  if (::lstat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return;
    fail("stat " + path);
  }
  if (!S_ISSOCK(st.st_mode)) {
    throw std::runtime_error("refusing to bind " + path +
                             ": exists and is not a socket");
  }
  const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (probe < 0) fail("socket");
  const sockaddr_un addr = unix_addr(path);
  const int rc =
      ::connect(probe, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  const int connect_errno = errno;
  ::close(probe);
  if (rc == 0) {
    throw std::runtime_error("refusing to bind " + path +
                             ": a live daemon is accepting on it");
  }
  if (connect_errno == ECONNREFUSED || connect_errno == ENOENT) {
    // Dead owner: the kernel refuses connections to an unlinked-in-
    // spirit socket whose listener is gone. Reclaim the path.
    // Checked inline; not the journal publication protocol — socket
    // nodes carry no data, so no fsync dance is owed here.
    if (::unlink(path.c_str()) != 0  // musk-lint: allow(unchecked-rename)
        && errno != ENOENT) {
      fail("unlink stale socket " + path);
    }
    return;
  }
  errno = connect_errno;
  fail("probe " + path);
}

}  // namespace

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint endpoint;
  if (spec.rfind("unix:", 0) == 0) {
    endpoint.is_unix = true;
    endpoint.path = spec.substr(5);
    if (endpoint.path.empty()) {
      throw std::runtime_error("empty unix socket path in '" + spec + "'");
    }
    return endpoint;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string port = spec.substr(4);
    char* end = nullptr;
    const long value = std::strtol(port.c_str(), &end, 10);
    if (port.empty() || *end != '\0' || value < 0 || value > 65535) {
      throw std::runtime_error("bad tcp port in '" + spec + "'");
    }
    endpoint.port = static_cast<std::uint16_t>(value);
    return endpoint;
  }
  throw std::runtime_error("endpoint must be tcp:<port> or unix:<path>, got '" +
                           spec + "'");
}

std::string to_string(const Endpoint& endpoint) {
  return endpoint.is_unix ? "unix:" + endpoint.path
                          : "tcp:" + std::to_string(endpoint.port);
}

int listen_on(Endpoint& endpoint, int backlog) {
  const int fd =
      ::socket(endpoint.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  if (endpoint.is_unix) {
    try {
      remove_stale_unix_socket(endpoint.path);
    } catch (...) {
      ::close(fd);
      throw;
    }
    const sockaddr_un addr = unix_addr(endpoint.path);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(fd);
      fail("bind " + endpoint.path);
    }
  } else {
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    const sockaddr_in addr = tcp_addr(endpoint.port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(fd);
      fail("bind tcp:" + std::to_string(endpoint.port));
    }
    if (endpoint.port == 0) {
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
        ::close(fd);
        fail("getsockname");
      }
      endpoint.port = ntohs(bound.sin_port);
    }
  }
  if (::listen(fd, backlog) < 0) {
    ::close(fd);
    fail("listen");
  }
  return fd;
}

int connect_to(const Endpoint& endpoint) {
  if (MUSK_FAULT_FAIL("sock.connect")) {
    errno = ECONNREFUSED;
    fail("connect " + to_string(endpoint) + " (injected)");
  }
  const int fd =
      ::socket(endpoint.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  int rc;
  if (endpoint.is_unix) {
    const sockaddr_un addr = unix_addr(endpoint.path);
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } else {
    const sockaddr_in addr = tcp_addr(endpoint.port);
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  }
  if (rc < 0) {
    ::close(fd);
    fail("connect " + to_string(endpoint));
  }
  return fd;
}

bool send_all(int fd, const char* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(rc);
  }
  return true;
}

}  // namespace musketeer::svc
