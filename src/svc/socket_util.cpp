#include "svc/socket_util.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace musketeer::svc {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("unix socket path empty or too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcp_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint endpoint;
  if (spec.rfind("unix:", 0) == 0) {
    endpoint.is_unix = true;
    endpoint.path = spec.substr(5);
    if (endpoint.path.empty()) {
      throw std::runtime_error("empty unix socket path in '" + spec + "'");
    }
    return endpoint;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string port = spec.substr(4);
    char* end = nullptr;
    const long value = std::strtol(port.c_str(), &end, 10);
    if (port.empty() || *end != '\0' || value < 0 || value > 65535) {
      throw std::runtime_error("bad tcp port in '" + spec + "'");
    }
    endpoint.port = static_cast<std::uint16_t>(value);
    return endpoint;
  }
  throw std::runtime_error("endpoint must be tcp:<port> or unix:<path>, got '" +
                           spec + "'");
}

std::string to_string(const Endpoint& endpoint) {
  return endpoint.is_unix ? "unix:" + endpoint.path
                          : "tcp:" + std::to_string(endpoint.port);
}

int listen_on(Endpoint& endpoint, int backlog) {
  const int fd =
      ::socket(endpoint.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  if (endpoint.is_unix) {
    ::unlink(endpoint.path.c_str());
    const sockaddr_un addr = unix_addr(endpoint.path);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(fd);
      fail("bind " + endpoint.path);
    }
  } else {
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    const sockaddr_in addr = tcp_addr(endpoint.port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(fd);
      fail("bind tcp:" + std::to_string(endpoint.port));
    }
    if (endpoint.port == 0) {
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
        ::close(fd);
        fail("getsockname");
      }
      endpoint.port = ntohs(bound.sin_port);
    }
  }
  if (::listen(fd, backlog) < 0) {
    ::close(fd);
    fail("listen");
  }
  return fd;
}

int connect_to(const Endpoint& endpoint) {
  const int fd =
      ::socket(endpoint.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  int rc;
  if (endpoint.is_unix) {
    const sockaddr_un addr = unix_addr(endpoint.path);
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } else {
    const sockaddr_in addr = tcp_addr(endpoint.port);
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  }
  if (rc < 0) {
    ::close(fd);
    fail("connect " + to_string(endpoint));
  }
  return fd;
}

bool send_all(int fd, const char* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(rc);
  }
  return true;
}

}  // namespace musketeer::svc
