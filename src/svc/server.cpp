#include "svc/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"
#include "util/fault.hpp"

namespace musketeer::svc {

namespace {

/// Poll granularity for stop-token checks; every blocking socket wait
/// re-checks its stop condition at least this often.
constexpr int kPollMillis = 100;

}  // namespace

SocketServer::SocketServer(RebalanceService& service, ServerConfig config)
    : service_(service), config_(std::move(config)) {}

SocketServer::~SocketServer() { stop(); }

void SocketServer::start() {
  MUSK_ASSERT_MSG(!started_, "SocketServer started twice");
  started_ = true;
  endpoint_ = parse_endpoint(config_.listen);
  listen_fd_ = listen_on(endpoint_, /*backlog=*/64);
  service_.on_epoch(
      [this](const EpochReport& report) { broadcast_epoch(report); });
  accept_thread_ = std::jthread(
      [this](const std::stop_token& stop) { accept_loop(stop); });
}

void SocketServer::stop() {
  if (stopping_.exchange(true)) return;
  if (accept_thread_.joinable()) {
    accept_thread_.request_stop();
    accept_thread_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::unique_ptr<Connection>> connections;
  {
    const util::OrderedLock lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (const auto& conn : connections) {
    send_frame(conn.get(), MsgType::kShutdown, {});
    conn->thread.request_stop();
    ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (auto& conn : connections) {
    if (conn->thread.joinable()) conn->thread.join();
    ::close(conn->fd);
  }
  // Best-effort cleanup of the listening socket node: nothing durable
  // lives at this path and a leftover node is reclaimed by the next
  // bind's connect-probe.
  if (started_ && endpoint_.is_unix)
    ::unlink(endpoint_.path.c_str());  // musk-lint: allow(unchecked-rename)
}

std::string SocketServer::endpoint() const { return to_string(endpoint_); }

void SocketServer::accept_loop(const std::stop_token& stop) {
  while (!stop.stop_requested()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, kPollMillis);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    {
      const util::OrderedLock lock(connections_mutex_);
      prune_finished_locked();
    }
    if (rc == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const util::OrderedLock lock(connections_mutex_);
    if (connections_.size() >=
        static_cast<std::size_t>(config_.max_connections)) {
      // Connection-level load shedding: over the cap we refuse to queue
      // another handler thread, but tell the client it hit a degraded
      // server, not a dead one — best-effort retry-after frame, then
      // close.
      ErrorMsg shed;
      shed.code = ErrorCode::kRetryAfter;
      // The hint scales with the service's shed level: a server that is
      // both connection-full and epoch-degraded wants clients to back
      // off much harder than one that is merely popular.
      shed.retry_after_ms = service_.retry_after_hint(
          static_cast<std::uint32_t>(config_.shed_retry_after_ms));
      shed.message = "server at connection capacity";
      std::string frame;
      append_frame(frame, MsgType::kError, encode_error(shed));
      send_all(fd, frame.data(), frame.size());
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    conn->thread = std::jthread(
        [this, raw](const std::stop_token& s) { connection_loop(s, raw); });
    connections_.push_back(std::move(conn));
    accepted_.fetch_add(1);
  }
}

void SocketServer::prune_finished_locked() {
  connections_mutex_.assert_held();
  std::erase_if(connections_, [](const std::unique_ptr<Connection>& conn) {
    if (!conn->done.load()) return false;
    ::close(conn->fd);
    return true;  // unique_ptr dtor joins the (finished) jthread
  });
}

void SocketServer::connection_loop(const std::stop_token& stop,
                                   Connection* conn) {
  char buf[4096];
  FrameParser parser;
  while (!stop.stop_requested()) {
    pollfd pfd{};
    pfd.fd = conn->fd;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, kPollMillis);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) continue;
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      break;
    }
    try {
      parser.feed(buf, static_cast<std::size_t>(n));
      while (const auto frame = parser.next()) {
        handle_frame(conn, *frame);
      }
    } catch (const std::exception& error) {
      send_frame(conn, MsgType::kError, encode_error(error.what()));
      break;
    }
  }
  conn->done.store(true);
}

void SocketServer::handle_frame(Connection* conn, const Frame& frame) {
  switch (frame.type) {
    case MsgType::kHello: {
      const HelloMsg hello = decode_hello(frame.payload);
      conn->player.store(hello.player);
      return;
    }
    case MsgType::kSubmitBid: {
      const BidSubmission bid = decode_submit_bid(frame.payload);
      BidAckMsg ack;
      ack.client_tag = bid.client_tag;
      ack.seq = bid.seq;
      ack.intake_epoch =
          static_cast<std::uint32_t>(service_.epochs_cleared());
      ack.status = service_.submit(bid);
      if (ack.status == IntakeStatus::kRejectedOverload) {
        // Bid-level load shedding: instead of an ack the client gets a
        // retry-after whose hint is scaled by the shed level, so a
        // degrading server pushes its herd back exponentially.
        ErrorMsg shed;
        shed.code = ErrorCode::kRetryAfter;
        shed.retry_after_ms = service_.retry_after_hint(
            static_cast<std::uint32_t>(config_.shed_retry_after_ms));
        shed.message = "bid shed: service overloaded";
        send_frame(conn, MsgType::kError, encode_error(shed));
        return;
      }
      send_frame(conn, MsgType::kBidAck, encode_bid_ack(ack));
      return;
    }
    case MsgType::kStatsRequest: {
      if (!frame.payload.empty()) {
        throw WireError("non-empty stats-request payload");
      }
      const ServiceStats stats = service_.stats_snapshot();
      StatsResponseMsg msg;
      msg.epoch = static_cast<std::uint32_t>(stats.epochs_cleared);
      msg.uptime_seconds = stats.uptime_seconds;
      msg.queue_depth = stats.queue_depth;
      msg.queue_capacity = stats.queue_capacity;
      msg.queue_high_watermark = stats.queue_high_watermark;
      msg.journal_bytes = stats.journal_bytes;
      msg.imbalance_gini = stats.imbalance_gini;
      msg.imbalance_mean = stats.imbalance_mean;
      msg.solve_threads = static_cast<std::uint32_t>(stats.solve_threads);
      msg.last_components = static_cast<std::uint32_t>(stats.last_components);
      msg.largest_component =
          static_cast<std::uint32_t>(stats.largest_component);
      msg.shed_level = static_cast<std::uint32_t>(stats.shed_level);
      msg.ewma_clear_seconds = stats.ewma_clear_seconds;
      msg.deadline_exceeded = stats.deadline_exceeded;
      msg.degraded_epochs = stats.degraded_epochs;
      msg.watchdog_fired = stats.watchdog_fired;
      msg.aborted_epochs = stats.aborted_epochs;
      msg.snapshot_age_seconds = stats.snapshot_age_seconds;
      msg.epochs_since_snapshot = stats.epochs_since_snapshot;
      msg.snapshots_taken = stats.snapshots_taken;
      msg.journal_segments = stats.journal_segments;
      msg.intake = stats.intake;
      msg.registry_json = obs::registry().to_json();
      send_frame(conn, MsgType::kStatsResponse, encode_stats_response(msg));
      return;
    }
    default:
      throw WireError("unexpected client message type " +
                      std::to_string(static_cast<int>(frame.type)));
  }
}

bool SocketServer::send_frame(Connection* conn, MsgType type,
                              std::string_view payload) {
  std::string frame;
  append_frame(frame, type, payload);
  // Chaos hook: drop/truncate/corrupt the outbound frame (a lost or
  // mangled ack is what forces clients into idempotent resubmission).
  MUSK_FAULT_MUTATE("wire.server.send", frame);
  const util::OrderedLock lock(conn->write_mutex);
  if (conn->done.load()) return false;
  if (!send_all(conn->fd, frame.data(), frame.size())) {
    conn->done.store(true);
    return false;
  }
  return true;
}

void SocketServer::broadcast_epoch(const EpochReport& report) {
  MUSK_OBS_SPAN(span, "svc.broadcast");
  span.set_epoch(report.trace_id);
  const std::string result_payload = encode_epoch_result(report);
  const util::OrderedLock lock(connections_mutex_);
  for (const auto& conn : connections_) {
    if (conn->done.load()) continue;
    send_frame(conn.get(), MsgType::kEpochResult, result_payload);
    const core::PlayerId player = conn->player.load();
    if (player < 0) continue;
    for (const PlayerNotice& notice : report.notices) {
      if (notice.player == player) {
        send_frame(conn.get(), MsgType::kPlayerNotice,
                   encode_player_notice(
                       static_cast<std::uint32_t>(report.epoch), notice));
        break;
      }
    }
  }
}

}  // namespace musketeer::svc
