// Blocking client for the rebalancing service's wire protocol — the
// node-side library used by musk_loadgen, the e2e tests, and any tool
// that wants to talk to musketeerd.
//
// Not thread-safe: use one Client per thread (loadgen does exactly
// that). Frames that arrive while waiting for something else (epoch
// results, player notices) are queued, not dropped.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "svc/wire.hpp"

namespace musketeer::svc {

class Client {
 public:
  /// Connects to "tcp:<port>" / "unix:<path>". Throws on failure.
  explicit Client(const std::string& endpoint);
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Registers this connection's player id for settlement notices.
  void hello(core::PlayerId player);

  /// Sends a bid and blocks until its ack (matched by client_tag; a
  /// fresh tag is assigned if the bid's is 0). Throws WireError on
  /// protocol violations and std::runtime_error on timeout/disconnect.
  BidAckMsg submit(const BidSubmission& bid,
                   std::chrono::milliseconds timeout =
                       std::chrono::milliseconds(5000));

  /// Waits until an epoch result with epoch >= `epoch` has been
  /// received (consuming queued ones first); nullopt on timeout.
  std::optional<EpochResultMsg> wait_epoch_at_least(
      std::uint32_t epoch, std::chrono::milliseconds timeout);

  /// Drains the queued epoch results / player notices received so far.
  std::vector<EpochResultMsg> take_epoch_results();
  std::vector<PlayerNoticeMsg> take_notices();

  /// True once the server said kShutdown or the connection dropped.
  bool closed() const { return fd_ < 0; }

  void close();

 private:
  /// Reads socket bytes until one frame is complete or the deadline
  /// passes; dispatches kEpochResult/kPlayerNotice/kError/kShutdown
  /// internally and returns other frames to the caller.
  std::optional<Frame> read_frame(
      std::chrono::steady_clock::time_point deadline);
  void send_frame(MsgType type, std::string_view payload);

  int fd_ = -1;
  FrameParser parser_;
  std::uint64_t next_tag_ = 1;
  std::vector<EpochResultMsg> epochs_;
  std::vector<PlayerNoticeMsg> notices_;
};

}  // namespace musketeer::svc
