// Blocking client for the rebalancing service's wire protocol — the
// node-side library used by musk_loadgen, the e2e tests, and any tool
// that wants to talk to musketeerd.
//
// Resilience (opt-in via ClientConfig::max_attempts > 1): submit()
// assigns each bid a per-player monotonic sequence number and retries
// through connection loss, server load shedding (kError{kRetryAfter}),
// and ambiguous ack timeouts — reconnecting with exponential backoff
// plus jitter and resubmitting the *same* sequence number, so the
// server-side dedup guarantees the bid is taken at most once no matter
// how many copies the retries deliver. A retried submission whose
// original actually landed comes back as IntakeStatus::kDuplicate,
// which callers should treat as success.
//
// Not thread-safe: use one Client per thread (loadgen does exactly
// that). Frames that arrive while waiting for something else (epoch
// results, player notices) are queued, not dropped.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "svc/wire.hpp"
#include "util/rng.hpp"

namespace musketeer::svc {

/// The server shed this connection (kError{kRetryAfter}): it is
/// degraded, not broken. retry_after_ms carries its backoff hint.
class ServerBusyError : public WireError {
 public:
  ServerBusyError(const std::string& what, std::uint32_t retry_after)
      : WireError(what), retry_after_ms(retry_after) {}
  std::uint32_t retry_after_ms = 0;
};

/// The server reported a generic error (kError{kGeneric}) and the
/// connection is gone. Derives from WireError so legacy catch sites
/// keep working.
class RemoteError : public WireError {
 public:
  using WireError::WireError;
};

/// Terminal overload: submit() exhausted its cumulative retry-sleep
/// budget (ClientConfig::retry_budget) while the server kept shedding.
/// Unlike ServerBusyError (one shed answer, retried internally), this
/// is the client library giving up — more retries are pointless until
/// the operator drains the overload. total_backoff_ms is how long the
/// client slept across all attempts before surrendering.
class OverloadedError : public WireError {
 public:
  OverloadedError(const std::string& what, std::uint64_t slept_ms)
      : WireError(what), total_backoff_ms(slept_ms) {}
  std::uint64_t total_backoff_ms = 0;
};

struct ClientConfig {
  /// Submission/connect attempts before an error propagates. The
  /// default 1 is the legacy fail-fast behavior; resilient callers set
  /// 3–5 and treat kDuplicate acks as success.
  int max_attempts = 1;
  /// Backoff before retry k is base * 2^(k-1), capped at backoff_max,
  /// never below the server's retry-after hint, plus up to +50% jitter.
  std::chrono::milliseconds backoff_base{50};
  std::chrono::milliseconds backoff_max{2000};
  /// Jitter seed (deterministic tests; 0 picks the Rng default).
  std::uint64_t jitter_seed = 0;
  /// Cap on submit()'s CUMULATIVE retry sleep across all attempts
  /// (0 = uncapped). A permanently-shedding server keeps answering
  /// kRetryAfter with growing hints; without this cap a high
  /// max_attempts client would sleep for the sum of every hint. Once
  /// the next backoff would push the total past the budget, submit()
  /// throws OverloadedError instead of sleeping.
  std::chrono::milliseconds retry_budget{15000};
};

class Client {
 public:
  /// Connects to "tcp:<port>" / "unix:<path>". Throws on failure.
  explicit Client(const std::string& endpoint)
      : Client(endpoint, ClientConfig{}) {}
  Client(const std::string& endpoint, const ClientConfig& config);
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Registers this connection's player id for settlement notices
  /// (re-sent automatically after a reconnect).
  void hello(core::PlayerId player);

  /// Sends a bid and blocks until its ack (matched by client_tag; a
  /// fresh tag is assigned if the bid's is 0, and a fresh per-player
  /// sequence number if its seq is 0). With max_attempts > 1, retries
  /// across reconnects as described above; `timeout` bounds each
  /// attempt's ack wait. Throws WireError (or a subclass) on protocol
  /// violations and std::runtime_error on timeout/disconnect once
  /// attempts are exhausted.
  BidAckMsg submit(const BidSubmission& bid,
                   std::chrono::milliseconds timeout =
                       std::chrono::milliseconds(5000));

  /// Waits until an epoch result with epoch >= `epoch` has been
  /// received (consuming queued ones first); nullopt on timeout.
  std::optional<EpochResultMsg> wait_epoch_at_least(
      std::uint32_t epoch, std::chrono::milliseconds timeout);

  /// Requests the server's live stats snapshot (kStatsRequest) and
  /// blocks for the response. Fail-fast (no retry loop): stats are a
  /// point-in-time read, so the caller just asks again.
  StatsResponseMsg stats(std::chrono::milliseconds timeout =
                             std::chrono::milliseconds(5000));

  /// Drains the queued epoch results / player notices received so far.
  std::vector<EpochResultMsg> take_epoch_results();
  std::vector<PlayerNoticeMsg> take_notices();

  /// True once the server said kShutdown or the connection dropped.
  bool closed() const { return fd_ < 0; }

  void close();

  /// Closes and re-establishes the connection (fresh frame parser —
  /// any half-received frame from the dead stream is dropped) and
  /// replays the hello. submit() calls this itself between attempts;
  /// it is public for callers that reconnect on their own schedule.
  void reconnect();

 private:
  /// Reads socket bytes until one frame is complete or the deadline
  /// passes; dispatches kEpochResult/kPlayerNotice/kError/kShutdown
  /// internally and returns other frames to the caller.
  std::optional<Frame> read_frame(
      std::chrono::steady_clock::time_point deadline);
  void send_frame(MsgType type, std::string_view payload);
  BidAckMsg submit_once(const BidSubmission& bid,
                        std::chrono::milliseconds timeout);
  /// Computes the attempt's backoff (exponential, jittered, at least
  /// the server hint) without sleeping — submit() checks it against the
  /// cumulative retry budget before blocking.
  std::uint64_t backoff_delay_ms(int attempt, std::uint32_t server_hint_ms);

  std::string endpoint_;
  ClientConfig config_;
  int fd_ = -1;
  FrameParser parser_;
  std::uint64_t next_tag_ = 1;
  /// Last sequence number assigned per player (monotonic per client;
  /// the queue's watermark makes retried numbers idempotent).
  std::unordered_map<core::PlayerId, std::uint32_t> player_seq_;
  std::optional<core::PlayerId> hello_player_;
  util::Rng jitter_rng_;
  std::vector<EpochResultMsg> epochs_;
  std::vector<PlayerNoticeMsg> notices_;
};

}  // namespace musketeer::svc
