// Versioned, length-prefixed wire protocol for the rebalancing service.
//
// Every message is one frame:
//
//     offset 0   u32  magic    "MUSK" (0x4B53554D little-endian)
//            4   u16  version  kWireVersion
//            6   u16  type     MsgType
//            8   u32  length   payload bytes (<= kMaxFramePayload)
//           12   ...  payload  (per-type record, core::codec encoding)
//
// The incremental FrameParser validates magic/version/length *before*
// buffering a payload, so a hostile "4 GiB frame" header costs 12 bytes
// of buffering, not 4 GiB; payload decoding reuses the bounds-checked
// core::codec::Reader, so truncated or oversized records throw
// core::CodecError instead of reading garbage.
//
// Conversation shape:
//   client -> server : kHello (optional; registers the player id this
//                      connection wants settlement notices for)
//   client -> server : kSubmitBid (any number, any time; carries a
//                      per-player sequence number so a resubmission
//                      after an ambiguous timeout is idempotent)
//   server -> client : kBidAck (one per kSubmitBid, echoing client_tag
//                      and seq; carries the intake IntakeStatus and the
//                      epoch counter at intake — kDuplicate means an
//                      earlier copy of this seq was already taken)
//   server -> all    : kEpochResult (broadcast after each settle)
//   server -> hello'd: kPlayerNotice (that player's price/cycles)
//   server -> all    : kShutdown (then the connection closes)
//   server -> client : kError; code kRetryAfter is load shedding (the
//                      client should back off retry_after_ms and
//                      reconnect), kGeneric is a protocol violation.
//
//   client -> server : kStatsRequest (empty payload)
//   server -> client : kStatsResponse (live ServiceStats + the obs
//                      registry snapshot as JSON; musk_stats renders it)
//
// Version history: v1 (PR 2) had no submit-bid/ack sequence numbers and
// a bare-string error payload. v2 (PR 5) added both. v3 adds the
// kStatsRequest/kStatsResponse introspection pair. v4 adds the solve
// concurrency and component-shape fields to kStatsResponse. v5 adds the
// overload-health fields (shed level, clear-time EWMA, degradation
// counters, shed-intake counter) to kStatsResponse and the
// kRejectedOverload intake status. v6 adds the checkpoint-health fields
// (snapshot age, epochs since snapshot, snapshots taken, journal
// segment count) to kStatsResponse. Versions are not cross-compatible;
// both sides reject mismatched versions at the frame header.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/io.hpp"
#include "svc/service.hpp"

namespace musketeer::svc {

inline constexpr std::uint32_t kWireMagic = 0x4B53554D;  // "MUSK"
inline constexpr std::uint16_t kWireVersion = 6;
inline constexpr std::size_t kFrameHeaderBytes = 12;
inline constexpr std::size_t kMaxFramePayload = 1u << 20;  // 1 MiB

enum class MsgType : std::uint16_t {
  kHello = 1,
  kSubmitBid = 2,
  kBidAck = 3,
  kEpochResult = 4,
  kPlayerNotice = 5,
  kShutdown = 6,
  kError = 7,
  kStatsRequest = 8,
  kStatsResponse = 9,
};

/// Thrown on malformed framing (bad magic/version/type, oversized
/// length). Payload-level decode errors surface as core::CodecError.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Frame {
  MsgType type = MsgType::kError;
  std::string payload;
};

/// Appends one complete frame to `out`.
void append_frame(std::string& out, MsgType type, std::string_view payload);

/// Incremental frame decoder over a byte stream (one per connection).
/// feed() buffers bytes; next() yields complete frames in order and
/// throws WireError on a malformed header — after which the stream is
/// unusable and the connection should be dropped.
class FrameParser {
 public:
  void feed(const char* data, std::size_t n);
  std::optional<Frame> next();

  std::size_t buffered() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

// --- Message payloads --------------------------------------------------

struct HelloMsg {
  core::PlayerId player = 0;
};

struct BidAckMsg {
  std::uint64_t client_tag = 0;
  IntakeStatus status = IntakeStatus::kRejectedInvalid;
  /// Service epoch counter at intake: an accepted bid is applied to the
  /// first epoch cleared after this.
  std::uint32_t intake_epoch = 0;
  /// Echo of the submission's sequence number (0 = unsequenced).
  std::uint32_t seq = 0;
};

struct EpochResultMsg {
  std::uint32_t epoch = 0;
  std::uint64_t bids_applied = 0;
  std::uint32_t game_edges = 0;
  std::uint32_t cycles_executed = 0;
  std::int64_t rebalanced_volume = 0;
  double fees_paid = 0.0;
  double clear_seconds = 0.0;
  /// Settled-state digest (pcn::Network::state_digest()).
  std::uint64_t network_digest = 0;
};

struct PlayerNoticeMsg {
  std::uint32_t epoch = 0;
  PlayerNotice notice;
};

enum class ErrorCode : std::uint16_t {
  /// Protocol violation or server-side failure; the connection closes.
  kGeneric = 0,
  /// Load shedding: the server is degraded, not broken. The client
  /// should wait retry_after_ms, then reconnect and resubmit.
  kRetryAfter = 1,
};

struct ErrorMsg {
  ErrorCode code = ErrorCode::kGeneric;
  /// kRetryAfter only: suggested client backoff in milliseconds.
  std::uint32_t retry_after_ms = 0;
  std::string message;
};

std::string encode_hello(const HelloMsg& msg);
HelloMsg decode_hello(std::string_view payload);

std::string encode_submit_bid(const BidSubmission& bid);
BidSubmission decode_submit_bid(std::string_view payload);

std::string encode_bid_ack(const BidAckMsg& msg);
BidAckMsg decode_bid_ack(std::string_view payload);

std::string encode_epoch_result(const EpochReport& report);
EpochResultMsg decode_epoch_result(std::string_view payload);

std::string encode_player_notice(std::uint32_t epoch,
                                 const PlayerNotice& notice);
PlayerNoticeMsg decode_player_notice(std::string_view payload);

std::string encode_error(const ErrorMsg& msg);
/// Convenience: a kGeneric error with just a message.
std::string encode_error(std::string_view message);
ErrorMsg decode_error(std::string_view payload);

/// kStatsResponse payload: the service's ServiceStats plus the obs
/// registry snapshot (Registry::to_json() bytes, opaque to the wire
/// layer). kStatsRequest has an empty payload.
struct StatsResponseMsg {
  std::uint32_t epoch = 0;
  double uptime_seconds = 0.0;
  std::uint64_t queue_depth = 0;
  std::uint64_t queue_capacity = 0;
  std::uint64_t queue_high_watermark = 0;
  std::uint64_t journal_bytes = 0;
  double imbalance_gini = 0.0;
  double imbalance_mean = 0.0;
  /// v4: solve concurrency and the last epoch's component shape.
  std::uint32_t solve_threads = 1;
  std::uint32_t last_components = 0;
  std::uint32_t largest_component = 0;
  /// v5 health fields: overload shed level (0-3), clear-time EWMA, and
  /// the degradation counters (see ServiceStats).
  std::uint32_t shed_level = 0;
  double ewma_clear_seconds = 0.0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t degraded_epochs = 0;
  std::uint64_t watchdog_fired = 0;
  std::uint64_t aborted_epochs = 0;
  /// v6 checkpoint health: seconds since the last snapshot (-1 when no
  /// snapshot has been taken this run), settled epochs since it, total
  /// snapshots this run, and live journal segment count.
  double snapshot_age_seconds = -1.0;
  std::uint64_t epochs_since_snapshot = 0;
  std::uint64_t snapshots_taken = 0;
  std::uint64_t journal_segments = 0;
  IntakeCounters intake;
  std::string registry_json;
};

std::string encode_stats_response(const StatsResponseMsg& msg);
StatsResponseMsg decode_stats_response(std::string_view payload);

}  // namespace musketeer::svc
