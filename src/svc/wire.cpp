#include "svc/wire.hpp"

#include <cmath>

namespace musketeer::svc {

using core::codec::put_f64;
using core::codec::put_i64;
using core::codec::put_u16;
using core::codec::put_u32;
using core::codec::put_u64;
using core::codec::put_u8;
using core::codec::Reader;

namespace {

bool known_type(std::uint16_t type) {
  return type >= static_cast<std::uint16_t>(MsgType::kHello) &&
         type <= static_cast<std::uint16_t>(MsgType::kStatsResponse);
}

/// Reads through the whole payload or throws (CodecError on truncation
/// via Reader, WireError on trailing garbage for uniform reporting).
Reader payload_reader(std::string_view payload) { return Reader(payload); }

void expect_consumed(const Reader& in, const char* what) {
  if (!in.done()) {
    throw WireError(std::string("trailing bytes in ") + what + " payload");
  }
}

}  // namespace

void append_frame(std::string& out, MsgType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw WireError("frame payload exceeds kMaxFramePayload");
  }
  put_u32(out, kWireMagic);
  put_u16(out, kWireVersion);
  put_u16(out, static_cast<std::uint16_t>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload.data(), payload.size());
}

void FrameParser::feed(const char* data, std::size_t n) {
  buffer_.append(data, n);
}

std::optional<Frame> FrameParser::next() {
  if (buffer_.size() < kFrameHeaderBytes) return std::nullopt;
  Reader header(std::string_view(buffer_).substr(0, kFrameHeaderBytes));
  const std::uint32_t magic = header.u32();
  if (magic != kWireMagic) throw WireError("bad frame magic");
  const std::uint16_t version = header.u16();
  if (version != kWireVersion) {
    throw WireError("unsupported wire version " + std::to_string(version));
  }
  const std::uint16_t type = header.u16();
  if (!known_type(type)) {
    throw WireError("unknown message type " + std::to_string(type));
  }
  const std::uint32_t length = header.u32();
  if (length > kMaxFramePayload) {
    throw WireError("frame payload length " + std::to_string(length) +
                    " exceeds limit");
  }
  if (buffer_.size() < kFrameHeaderBytes + length) return std::nullopt;
  Frame frame;
  frame.type = static_cast<MsgType>(type);
  frame.payload = buffer_.substr(kFrameHeaderBytes, length);
  buffer_.erase(0, kFrameHeaderBytes + length);
  return frame;
}

std::string encode_hello(const HelloMsg& msg) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(msg.player));
  return out;
}

HelloMsg decode_hello(std::string_view payload) {
  Reader in = payload_reader(payload);
  HelloMsg msg;
  msg.player = static_cast<core::PlayerId>(in.u32());
  expect_consumed(in, "hello");
  return msg;
}

std::string encode_submit_bid(const BidSubmission& bid) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(bid.player));
  std::uint8_t flags = 0;
  if (bid.has_tail) flags |= 1;
  if (bid.has_head) flags |= 2;
  put_u8(out, flags);
  put_f64(out, bid.tail_bid);
  put_f64(out, bid.head_bid);
  put_u64(out, bid.client_tag);
  put_u32(out, bid.seq);
  return out;
}

BidSubmission decode_submit_bid(std::string_view payload) {
  Reader in = payload_reader(payload);
  BidSubmission bid;
  bid.player = static_cast<core::PlayerId>(in.u32());
  const std::uint8_t flags = in.u8();
  if ((flags & ~0x3u) != 0) throw WireError("unknown submit-bid flags");
  bid.has_tail = (flags & 1) != 0;
  bid.has_head = (flags & 2) != 0;
  bid.tail_bid = in.f64();
  bid.head_bid = in.f64();
  bid.client_tag = in.u64();
  bid.seq = in.u32();
  expect_consumed(in, "submit-bid");
  // Semantic validation (bounds, finiteness) happens at the BidQueue
  // door so wire decoding and intake report through one channel.
  return bid;
}

std::string encode_bid_ack(const BidAckMsg& msg) {
  std::string out;
  put_u64(out, msg.client_tag);
  put_u8(out, static_cast<std::uint8_t>(msg.status));
  put_u32(out, msg.intake_epoch);
  put_u32(out, msg.seq);
  return out;
}

BidAckMsg decode_bid_ack(std::string_view payload) {
  Reader in = payload_reader(payload);
  BidAckMsg msg;
  msg.client_tag = in.u64();
  const std::uint8_t status = in.u8();
  if (status > static_cast<std::uint8_t>(IntakeStatus::kRejectedOverload)) {
    throw WireError("unknown intake status in ack");
  }
  msg.status = static_cast<IntakeStatus>(status);
  msg.intake_epoch = in.u32();
  msg.seq = in.u32();
  expect_consumed(in, "bid-ack");
  return msg;
}

std::string encode_epoch_result(const EpochReport& report) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(report.epoch));
  put_u64(out, report.bids_applied);
  put_u32(out, static_cast<std::uint32_t>(report.game_edges));
  put_u32(out, static_cast<std::uint32_t>(report.cycles_executed));
  put_i64(out, report.rebalanced_volume);
  put_f64(out, report.fees_paid);
  put_f64(out, report.clear_seconds);
  put_u64(out, report.network_digest);
  return out;
}

EpochResultMsg decode_epoch_result(std::string_view payload) {
  Reader in = payload_reader(payload);
  EpochResultMsg msg;
  msg.epoch = in.u32();
  msg.bids_applied = in.u64();
  msg.game_edges = in.u32();
  msg.cycles_executed = in.u32();
  msg.rebalanced_volume = in.i64();
  msg.fees_paid = in.f64();
  msg.clear_seconds = in.f64();
  msg.network_digest = in.u64();
  if (!std::isfinite(msg.fees_paid) || !std::isfinite(msg.clear_seconds)) {
    throw WireError("non-finite epoch-result field");
  }
  expect_consumed(in, "epoch-result");
  return msg;
}

std::string encode_player_notice(std::uint32_t epoch,
                                 const PlayerNotice& notice) {
  std::string out;
  put_u32(out, epoch);
  put_u32(out, static_cast<std::uint32_t>(notice.player));
  put_f64(out, notice.price);
  put_u32(out, static_cast<std::uint32_t>(notice.cycles));
  put_i64(out, notice.volume);
  put_f64(out, notice.delay_bonus);
  return out;
}

PlayerNoticeMsg decode_player_notice(std::string_view payload) {
  Reader in = payload_reader(payload);
  PlayerNoticeMsg msg;
  msg.epoch = in.u32();
  msg.notice.player = static_cast<core::PlayerId>(in.u32());
  msg.notice.price = in.f64();
  msg.notice.cycles = static_cast<int>(in.u32());
  msg.notice.volume = in.i64();
  msg.notice.delay_bonus = in.f64();
  if (!std::isfinite(msg.notice.price) ||
      !std::isfinite(msg.notice.delay_bonus)) {
    throw WireError("non-finite player-notice field");
  }
  expect_consumed(in, "player-notice");
  return msg;
}

std::string encode_error(const ErrorMsg& msg) {
  std::string out;
  put_u16(out, static_cast<std::uint16_t>(msg.code));
  put_u32(out, msg.retry_after_ms);
  put_u32(out, static_cast<std::uint32_t>(msg.message.size()));
  out.append(msg.message.data(), msg.message.size());
  return out;
}

std::string encode_error(std::string_view message) {
  ErrorMsg msg;
  msg.message = std::string(message);
  return encode_error(msg);
}

std::string encode_stats_response(const StatsResponseMsg& msg) {
  std::string out;
  put_u32(out, msg.epoch);
  put_f64(out, msg.uptime_seconds);
  put_u64(out, msg.queue_depth);
  put_u64(out, msg.queue_capacity);
  put_u64(out, msg.queue_high_watermark);
  put_u64(out, msg.journal_bytes);
  put_f64(out, msg.imbalance_gini);
  put_f64(out, msg.imbalance_mean);
  put_u32(out, msg.solve_threads);
  put_u32(out, msg.last_components);
  put_u32(out, msg.largest_component);
  put_u32(out, msg.shed_level);
  put_f64(out, msg.ewma_clear_seconds);
  put_u64(out, msg.deadline_exceeded);
  put_u64(out, msg.degraded_epochs);
  put_u64(out, msg.watchdog_fired);
  put_u64(out, msg.aborted_epochs);
  put_f64(out, msg.snapshot_age_seconds);
  put_u64(out, msg.epochs_since_snapshot);
  put_u64(out, msg.snapshots_taken);
  put_u64(out, msg.journal_segments);
  put_u64(out, msg.intake.accepted);
  put_u64(out, msg.intake.replaced);
  put_u64(out, msg.intake.rejected_full);
  put_u64(out, msg.intake.rejected_invalid);
  put_u64(out, msg.intake.rejected_closed);
  put_u64(out, msg.intake.duplicate);
  put_u64(out, msg.intake.rejected_overload);
  put_u32(out, static_cast<std::uint32_t>(msg.registry_json.size()));
  out.append(msg.registry_json.data(), msg.registry_json.size());
  return out;
}

StatsResponseMsg decode_stats_response(std::string_view payload) {
  Reader in = payload_reader(payload);
  StatsResponseMsg msg;
  msg.epoch = in.u32();
  msg.uptime_seconds = in.f64();
  msg.queue_depth = in.u64();
  msg.queue_capacity = in.u64();
  msg.queue_high_watermark = in.u64();
  msg.journal_bytes = in.u64();
  msg.imbalance_gini = in.f64();
  msg.imbalance_mean = in.f64();
  msg.solve_threads = in.u32();
  msg.last_components = in.u32();
  msg.largest_component = in.u32();
  msg.shed_level = in.u32();
  msg.ewma_clear_seconds = in.f64();
  msg.deadline_exceeded = in.u64();
  msg.degraded_epochs = in.u64();
  msg.watchdog_fired = in.u64();
  msg.aborted_epochs = in.u64();
  msg.snapshot_age_seconds = in.f64();
  msg.epochs_since_snapshot = in.u64();
  msg.snapshots_taken = in.u64();
  msg.journal_segments = in.u64();
  msg.intake.accepted = in.u64();
  msg.intake.replaced = in.u64();
  msg.intake.rejected_full = in.u64();
  msg.intake.rejected_invalid = in.u64();
  msg.intake.rejected_closed = in.u64();
  msg.intake.duplicate = in.u64();
  msg.intake.rejected_overload = in.u64();
  if (!std::isfinite(msg.uptime_seconds) ||
      !std::isfinite(msg.imbalance_gini) ||
      !std::isfinite(msg.imbalance_mean) ||
      !std::isfinite(msg.ewma_clear_seconds) ||
      // -1 is the "no snapshot yet" sentinel; anything non-finite is torn.
      !std::isfinite(msg.snapshot_age_seconds)) {
    throw WireError("non-finite stats-response field");
  }
  const std::size_t n = in.check_count(in.u32(), 1);
  // Fixed-size prefix: 5 u32s (epoch, 3 v4 solve fields, v5 shed level)
  // + 5 doubles (uptime, gini, mean, v5 EWMA, v6 snapshot age) + 18 u64s
  // (4 queue/journal, 4 v5 degradation counters, 3 v6 checkpoint
  // counters, 7 intake) + the u32 length.
  constexpr std::size_t kPrefix = 4 * 5 + 8 * 5 + 8 * 18 + 4;
  msg.registry_json = std::string(payload.substr(kPrefix, n));
  // The JSON bytes were consumed via substr, not the reader.
  if (payload.size() != kPrefix + n) {
    throw WireError("trailing bytes in stats-response payload");
  }
  return msg;
}

ErrorMsg decode_error(std::string_view payload) {
  Reader in = payload_reader(payload);
  ErrorMsg msg;
  const std::uint16_t code = in.u16();
  if (code > static_cast<std::uint16_t>(ErrorCode::kRetryAfter)) {
    throw WireError("unknown error code " + std::to_string(code));
  }
  msg.code = static_cast<ErrorCode>(code);
  msg.retry_after_ms = in.u32();
  const std::size_t n = in.check_count(in.u32(), 1);
  constexpr std::size_t kPrefix = 2 + 4 + 4;
  msg.message = std::string(payload.substr(kPrefix, n));
  // The message bytes were consumed via substr, not the reader.
  if (payload.size() != kPrefix + n) {
    throw WireError("trailing bytes in error payload");
  }
  return msg;
}

}  // namespace musketeer::svc
