// Concurrent bid intake for the epoch-batched rebalancing service.
//
// Many connection handlers push, one epoch scheduler drains (bounded
// MPSC). Semantics chosen for an auction, not a log:
//
//   * per-player replace: a newer submission from the same player
//     overwrites the queued one (kReplaced) — the auction only ever
//     wants each player's latest bid, so a player refreshing its bid
//     can never be the reason the queue fills;
//   * bounded + reject-with-reason: when `capacity` distinct players
//     are already queued, further *new* players are refused with
//     kRejectedFull instead of growing memory — explicit backpressure
//     the wire protocol reports back to the client;
//   * validated at the door: malformed bids (non-finite, outside the
//     §2.3 box) never enter the queue (kRejectedInvalid);
//   * atomic drain: the scheduler takes the whole pending set in one
//     critical section, so a bid is applied to exactly one epoch — the
//     first one cleared after its intake.
//
// drain() returns the submissions sorted by player id, making the
// epoch's bid-override application order independent of intake thread
// timing (the service-vs-single-threaded equivalence tests rely on it).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"
#include "util/ordered_mutex.hpp"
#include "util/thread_annotations.hpp"

namespace musketeer::svc {

/// One player's bid for the next epoch. The overrides apply to every
/// edge of the extracted game the player is party to: `tail_bid`
/// (seller ask, <= 0) wherever the player is an edge's tail, `head_bid`
/// (buyer bid, >= 0) wherever it is the head. A submission with neither
/// override is a participation refresh: the player keeps its extracted
/// truthful valuations.
struct BidSubmission {
  core::PlayerId player = 0;
  bool has_tail = false;
  double tail_bid = 0.0;
  bool has_head = false;
  double head_bid = 0.0;
  /// Opaque client-chosen tag echoed in the wire-protocol ack.
  std::uint64_t client_tag = 0;
  /// Per-player monotonic submission sequence number; 0 = unsequenced
  /// (legacy clients, dedup bypassed). A submission whose seq is <= the
  /// player's last queued seq is reported kDuplicate and dropped: a
  /// client that resubmits after an ambiguous timeout cannot get the
  /// bid taken twice. The watermark survives drains — that is the
  /// point, since the ambiguity is precisely "was my bid drained into
  /// an epoch before the ack got lost?".
  std::uint32_t seq = 0;
};

enum class IntakeStatus : std::uint8_t {
  kAccepted = 0,        // queued; player was not pending
  kReplaced = 1,        // queued; overwrote the player's pending bid
  kRejectedFull = 2,    // queue at capacity and player not pending
  kRejectedInvalid = 3, // bid outside the valid box / non-finite player
  kRejectedClosed = 4,  // service shutting down
  kDuplicate = 5,       // seq already taken: the earlier copy stands
  kRejectedOverload = 6,  // shed by admission control (service overloaded)
};

const char* to_string(IntakeStatus status);

/// True for the two statuses that leave a bid in the queue.
inline bool intake_ok(IntakeStatus status) {
  return status == IntakeStatus::kAccepted ||
         status == IntakeStatus::kReplaced;
}

struct IntakeCounters {
  std::uint64_t accepted = 0;
  std::uint64_t replaced = 0;
  std::uint64_t rejected_full = 0;
  std::uint64_t rejected_invalid = 0;
  std::uint64_t rejected_closed = 0;
  std::uint64_t duplicate = 0;
  /// Bids shed by the service's overload admission control before they
  /// reached the queue (counted here so the stats endpoint reports one
  /// intake ledger).
  std::uint64_t rejected_overload = 0;

  std::uint64_t total() const {
    return accepted + replaced + rejected_full + rejected_invalid +
           rejected_closed + duplicate + rejected_overload;
  }
};

class BidQueue {
 public:
  /// `capacity` bounds the number of *distinct players* pending at once;
  /// `num_players` bounds valid player ids (submissions for ids outside
  /// [0, num_players) are kRejectedInvalid).
  BidQueue(std::size_t capacity, core::PlayerId num_players);

  /// Thread-safe intake. Never blocks; full is an answer, not a wait.
  IntakeStatus submit(const BidSubmission& bid) MUSK_EXCLUDES(mutex_);

  /// Takes every pending submission (sorted by player id) and empties
  /// the queue. Called by the epoch scheduler at the top of each epoch.
  std::vector<BidSubmission> drain() MUSK_EXCLUDES(mutex_);

  /// Further submits return kRejectedClosed; pending bids stay drainable.
  void close() MUSK_EXCLUDES(mutex_);

  /// True when `player` has a bid pending for the next epoch. Advisory
  /// (the answer can be stale by the time the caller acts on it) — used
  /// by the service's overload shedding to prefer resubmissions over
  /// new players.
  bool pending(core::PlayerId player) const MUSK_EXCLUDES(mutex_);

  /// Counts one bid the service shed before it reached submit() (the
  /// admission controller's kRejectedOverload answer).
  void count_overload_rejection() MUSK_EXCLUDES(mutex_);

  std::size_t size() const MUSK_EXCLUDES(mutex_);
  std::size_t capacity() const { return capacity_; }
  IntakeCounters counters() const MUSK_EXCLUDES(mutex_);

  /// Largest number of distinct players ever pending at once (since
  /// construction; drains do not reset it) — the backpressure headroom
  /// signal the stats endpoint reports.
  std::size_t high_watermark() const MUSK_EXCLUDES(mutex_);

  /// Max-merges recovered per-player seq watermarks into last_seq_, so
  /// duplicate detection survives a daemon restart: a bid whose seq was
  /// drained into a *committed* pre-crash epoch stays kDuplicate.
  /// Called once, before intake opens (journal/snapshot recovery).
  void restore_watermarks(
      const std::vector<std::pair<core::PlayerId, std::uint32_t>>& marks)
      MUSK_EXCLUDES(mutex_);

 private:
  const std::size_t capacity_;
  const core::PlayerId num_players_;

  mutable util::OrderedMutex mutex_{util::LockRank::kBidQueue, "bid-queue"};
  bool closed_ MUSK_GUARDED_BY(mutex_) = false;
  std::vector<BidSubmission> pending_ MUSK_GUARDED_BY(mutex_);
  std::unordered_map<core::PlayerId, std::size_t> index_
      MUSK_GUARDED_BY(mutex_);
  /// Highest sequence number ever queued per player. Deliberately NOT
  /// cleared by drain(): the duplicate answer must outlive the epoch
  /// that consumed the original submission.
  std::unordered_map<core::PlayerId, std::uint32_t> last_seq_
      MUSK_GUARDED_BY(mutex_);
  IntakeCounters counters_ MUSK_GUARDED_BY(mutex_);
  std::size_t high_watermark_ MUSK_GUARDED_BY(mutex_) = 0;
};

}  // namespace musketeer::svc
