#include "svc/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "svc/socket_util.hpp"

namespace musketeer::svc {

namespace {

constexpr int kPollMillis = 100;

}  // namespace

Client::Client(const std::string& endpoint)
    : fd_(connect_to(parse_endpoint(endpoint))) {}

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      parser_(std::move(other.parser_)),
      next_tag_(other.next_tag_),
      epochs_(std::move(other.epochs_)),
      notices_(std::move(other.notices_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    parser_ = std::move(other.parser_);
    next_tag_ = other.next_tag_;
    epochs_ = std::move(other.epochs_);
    notices_ = std::move(other.notices_);
    other.fd_ = -1;
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::send_frame(MsgType type, std::string_view payload) {
  if (fd_ < 0) throw std::runtime_error("client connection closed");
  std::string frame;
  append_frame(frame, type, payload);
  if (!send_all(fd_, frame.data(), frame.size())) {
    close();
    throw std::runtime_error("send failed: connection lost");
  }
}

void Client::hello(core::PlayerId player) {
  HelloMsg msg;
  msg.player = player;
  send_frame(MsgType::kHello, encode_hello(msg));
}

std::optional<Frame> Client::read_frame(
    std::chrono::steady_clock::time_point deadline) {
  char buf[4096];
  for (;;) {
    if (auto frame = parser_.next()) {
      switch (frame->type) {
        case MsgType::kEpochResult:
          epochs_.push_back(decode_epoch_result(frame->payload));
          break;
        case MsgType::kPlayerNotice:
          notices_.push_back(decode_player_notice(frame->payload));
          break;
        case MsgType::kError: {
          const ErrorMsg error = decode_error(frame->payload);
          close();
          throw WireError("server error: " + error.message);
        }
        case MsgType::kShutdown:
          close();
          break;
        default:
          break;
      }
      return frame;
    }
    if (fd_ < 0) return std::nullopt;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return std::nullopt;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - now)
                          .count();
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int rc = ::poll(
        &pfd, 1, static_cast<int>(std::min<long long>(left, kPollMillis)));
    if (rc < 0) {
      if (errno == EINTR) continue;
      close();
      throw std::runtime_error(std::string("poll: ") + std::strerror(errno));
    }
    if (rc == 0) continue;
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      close();
      return std::nullopt;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      close();
      throw std::runtime_error(std::string("recv: ") + std::strerror(errno));
    }
    parser_.feed(buf, static_cast<std::size_t>(n));
  }
}

BidAckMsg Client::submit(const BidSubmission& bid,
                         std::chrono::milliseconds timeout) {
  BidSubmission tagged = bid;
  if (tagged.client_tag == 0) tagged.client_tag = next_tag_++;
  send_frame(MsgType::kSubmitBid, encode_submit_bid(tagged));
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (auto frame = read_frame(deadline)) {
    if (frame->type == MsgType::kBidAck) {
      const BidAckMsg ack = decode_bid_ack(frame->payload);
      if (ack.client_tag == tagged.client_tag) return ack;
    } else if (frame->type == MsgType::kShutdown) {
      throw std::runtime_error("server shut down before ack");
    }
  }
  throw std::runtime_error(closed() ? "connection lost awaiting bid ack"
                                    : "timeout awaiting bid ack");
}

std::optional<EpochResultMsg> Client::wait_epoch_at_least(
    std::uint32_t epoch, std::chrono::milliseconds timeout) {
  const auto matches = [epoch](const EpochResultMsg& m) {
    return m.epoch >= epoch;
  };
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto it = std::find_if(epochs_.begin(), epochs_.end(), matches);
    if (it != epochs_.end()) return *it;
    if (fd_ < 0) return std::nullopt;
    if (!read_frame(deadline).has_value() &&
        std::chrono::steady_clock::now() >= deadline) {
      return std::nullopt;
    }
  }
}

std::vector<EpochResultMsg> Client::take_epoch_results() {
  std::vector<EpochResultMsg> out;
  out.swap(epochs_);
  return out;
}

std::vector<PlayerNoticeMsg> Client::take_notices() {
  std::vector<PlayerNoticeMsg> out;
  out.swap(notices_);
  return out;
}

}  // namespace musketeer::svc
