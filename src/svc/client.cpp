#include "svc/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "svc/socket_util.hpp"
#include "util/fault.hpp"

namespace musketeer::svc {

namespace {

constexpr int kPollMillis = 100;

}  // namespace

Client::Client(const std::string& endpoint, const ClientConfig& config)
    : endpoint_(endpoint),
      config_(config),
      fd_(connect_to(parse_endpoint(endpoint))),
      jitter_rng_(config.jitter_seed != 0 ? util::Rng(config.jitter_seed)
                                          : util::Rng()) {}

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : endpoint_(std::move(other.endpoint_)),
      config_(other.config_),
      fd_(other.fd_),
      parser_(std::move(other.parser_)),
      next_tag_(other.next_tag_),
      player_seq_(std::move(other.player_seq_)),
      hello_player_(other.hello_player_),
      jitter_rng_(other.jitter_rng_),
      epochs_(std::move(other.epochs_)),
      notices_(std::move(other.notices_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    endpoint_ = std::move(other.endpoint_);
    config_ = other.config_;
    fd_ = other.fd_;
    parser_ = std::move(other.parser_);
    next_tag_ = other.next_tag_;
    player_seq_ = std::move(other.player_seq_);
    hello_player_ = other.hello_player_;
    jitter_rng_ = other.jitter_rng_;
    epochs_ = std::move(other.epochs_);
    notices_ = std::move(other.notices_);
    other.fd_ = -1;
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::reconnect() {
  close();
  parser_ = FrameParser();
  fd_ = connect_to(parse_endpoint(endpoint_));
  if (hello_player_.has_value()) {
    HelloMsg msg;
    msg.player = *hello_player_;
    send_frame(MsgType::kHello, encode_hello(msg));
  }
}

void Client::send_frame(MsgType type, std::string_view payload) {
  if (fd_ < 0) throw std::runtime_error("client connection closed");
  std::string frame;
  append_frame(frame, type, payload);
  // Chaos hook: a dropped frame vanishes silently (the classic lost
  // submit), a truncated/corrupt one poisons the stream server-side.
  MUSK_FAULT_MUTATE("wire.client.send", frame);
  if (frame.empty()) return;
  if (!send_all(fd_, frame.data(), frame.size())) {
    close();
    throw std::runtime_error("send failed: connection lost");
  }
}

void Client::hello(core::PlayerId player) {
  hello_player_ = player;
  HelloMsg msg;
  msg.player = player;
  send_frame(MsgType::kHello, encode_hello(msg));
}

std::optional<Frame> Client::read_frame(
    std::chrono::steady_clock::time_point deadline) {
  char buf[4096];
  for (;;) {
    if (auto frame = parser_.next()) {
      switch (frame->type) {
        case MsgType::kEpochResult:
          epochs_.push_back(decode_epoch_result(frame->payload));
          break;
        case MsgType::kPlayerNotice:
          notices_.push_back(decode_player_notice(frame->payload));
          break;
        case MsgType::kError: {
          const ErrorMsg error = decode_error(frame->payload);
          close();
          if (error.code == ErrorCode::kRetryAfter) {
            throw ServerBusyError("server busy: " + error.message,
                                  error.retry_after_ms);
          }
          throw RemoteError("server error: " + error.message);
        }
        case MsgType::kShutdown:
          close();
          break;
        default:
          break;
      }
      return frame;
    }
    if (fd_ < 0) return std::nullopt;
    // Deadline plumbing, not a measurement (here and below).
    const auto now =
        std::chrono::steady_clock::now();  // musk-lint: allow(adhoc-timing)
    if (now >= deadline) return std::nullopt;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - now)
                          .count();
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int rc = ::poll(
        &pfd, 1, static_cast<int>(std::min<long long>(left, kPollMillis)));
    if (rc < 0) {
      if (errno == EINTR) continue;
      close();
      throw std::runtime_error(std::string("poll: ") + std::strerror(errno));
    }
    if (rc == 0) continue;
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      close();
      return std::nullopt;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      close();
      throw std::runtime_error(std::string("recv: ") + std::strerror(errno));
    }
    parser_.feed(buf, static_cast<std::size_t>(n));
  }
}

BidAckMsg Client::submit_once(const BidSubmission& bid,
                              std::chrono::milliseconds timeout) {
  send_frame(MsgType::kSubmitBid, encode_submit_bid(bid));
  const auto deadline = std::chrono::steady_clock::now() +  // musk-lint: allow(adhoc-timing)
      timeout;
  while (auto frame = read_frame(deadline)) {
    if (frame->type == MsgType::kBidAck) {
      const BidAckMsg ack = decode_bid_ack(frame->payload);
      if (ack.client_tag == bid.client_tag) return ack;
    } else if (frame->type == MsgType::kShutdown) {
      throw std::runtime_error("server shut down before ack");
    }
  }
  throw std::runtime_error(closed() ? "connection lost awaiting bid ack"
                                    : "timeout awaiting bid ack");
}

BidAckMsg Client::submit(const BidSubmission& bid,
                         std::chrono::milliseconds timeout) {
  BidSubmission tagged = bid;
  if (tagged.client_tag == 0) tagged.client_tag = next_tag_++;
  // The sequence number is assigned ONCE, before the first attempt:
  // every retry resends the same seq, which is what lets the server
  // collapse an ambiguous-timeout resubmission into kDuplicate.
  if (tagged.seq == 0) tagged.seq = ++player_seq_[tagged.player];

  std::uint64_t slept_ms = 0;
  const std::uint64_t budget_ms =
      config_.retry_budget.count() > 0
          ? static_cast<std::uint64_t>(config_.retry_budget.count())
          : 0;
  for (int attempt = 1;; ++attempt) {
    std::uint32_t server_hint_ms = 0;
    bool shed = false;
    try {
      if (fd_ < 0) reconnect();
      return submit_once(tagged, timeout);
    } catch (const ServerBusyError& busy) {
      if (attempt >= config_.max_attempts) throw;
      server_hint_ms = busy.retry_after_ms;
      shed = true;
    } catch (const std::runtime_error&) {
      // Connection loss, ack timeout (ambiguous — the bid may have
      // landed), remote error, corrupt stream: with the sequence
      // number pinned, resubmitting is safe in every one of these.
      if (attempt >= config_.max_attempts) throw;
    }
    const std::uint64_t wait_ms = backoff_delay_ms(attempt, server_hint_ms);
    // Cumulative retry-sleep cap: a permanently-shedding server answers
    // every attempt with a (scaled) kRetryAfter hint; without a budget
    // the retry loop would sleep out the sum of all of them. When the
    // next sleep would push past the budget, the overload is terminal
    // for this call.
    if (budget_ms > 0 && slept_ms + wait_ms > budget_ms) {
      throw OverloadedError(
          shed ? "server overloaded: retry budget exhausted after " +
                     std::to_string(slept_ms) + " ms of backoff"
               : "retry budget exhausted after " + std::to_string(slept_ms) +
                     " ms of backoff",
          slept_ms);
    }
    if (wait_ms > 0) {
      // poll(2) with no fds: the lint-sanctioned bounded block.
      ::poll(nullptr, 0, static_cast<int>(wait_ms));
    }
    slept_ms += wait_ms;
  }
}

std::uint64_t Client::backoff_delay_ms(int attempt,
                                       std::uint32_t server_hint_ms) {
  const long long cap = config_.backoff_max.count();
  long long wait = config_.backoff_base.count();
  for (int i = 1; i < attempt && wait < cap; ++i) wait *= 2;
  wait = std::min(wait, cap);
  wait = std::max<long long>(wait, server_hint_ms);
  if (wait <= 0) return 0;
  // Up to +50% jitter so a shed herd does not reconnect in lockstep.
  wait += static_cast<long long>(
      jitter_rng_.uniform(static_cast<std::uint64_t>(wait) / 2 + 1));
  return static_cast<std::uint64_t>(wait);
}

StatsResponseMsg Client::stats(std::chrono::milliseconds timeout) {
  send_frame(MsgType::kStatsRequest, {});
  const auto deadline = std::chrono::steady_clock::now() +  // musk-lint: allow(adhoc-timing)
      timeout;
  while (auto frame = read_frame(deadline)) {
    if (frame->type == MsgType::kStatsResponse) {
      return decode_stats_response(frame->payload);
    }
  }
  throw std::runtime_error(closed() ? "connection lost awaiting stats"
                                    : "timeout awaiting stats");
}

std::optional<EpochResultMsg> Client::wait_epoch_at_least(
    std::uint32_t epoch, std::chrono::milliseconds timeout) {
  const auto matches = [epoch](const EpochResultMsg& m) {
    return m.epoch >= epoch;
  };
  const auto deadline = std::chrono::steady_clock::now() +  // musk-lint: allow(adhoc-timing)
      timeout;
  for (;;) {
    const auto it = std::find_if(epochs_.begin(), epochs_.end(), matches);
    if (it != epochs_.end()) return *it;
    if (fd_ < 0) return std::nullopt;
    if (!read_frame(deadline).has_value() &&
        std::chrono::steady_clock::now() >=  // musk-lint: allow(adhoc-timing)
            deadline) {
      return std::nullopt;
    }
  }
}

std::vector<EpochResultMsg> Client::take_epoch_results() {
  std::vector<EpochResultMsg> out;
  out.swap(epochs_);
  return out;
}

std::vector<PlayerNoticeMsg> Client::take_notices() {
  std::vector<PlayerNoticeMsg> out;
  out.swap(notices_);
  return out;
}

}  // namespace musketeer::svc
