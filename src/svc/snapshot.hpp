// Checkpointed recovery: versioned, checksummed snapshots of the full
// recovery state, so a restarted daemon replays only the journal tail
// written since the last checkpoint instead of every epoch since
// genesis (DESIGN.md §15).
//
// A snapshot captures everything recovery would otherwise reconstruct
// by replay:
//
//   * the pcn::Network channel state and its state_digest(),
//   * the epoch counter the service must resume at,
//   * the per-player intake seq watermarks of every committed epoch
//     (so duplicate-bid detection survives the restart),
//   * the admission controller's shed level and clear-time EWMA,
//   * the journal segment the recovery tail starts at (the service
//     rolls to a fresh segment immediately before snapshotting, so the
//     tail is empty at capture time and every later record lands in
//     segments >= first_segment).
//
// Files are `<journal base>.snap.<seq>` (6-digit seq, monotonically
// increasing) and are published atomically: full write to
// `<base>.snap.tmp` + fsync + rename + parent-dir fsync. A reader
// therefore never sees a partial snapshot — only the previous one or
// the new one. Validation is end-to-end: the trailing FNV-1a checksum
// guards the bytes, and the decoded network's state_digest() must equal
// the digest stored beside it, so a snapshot that decodes but drifted
// is rejected just like a torn one.
//
// Recovery precedence (svc::recover): newest digest-valid snapshot,
// older snapshots on corruption, full genesis replay when no valid
// snapshot exists (impossible once compaction has removed segment 0 —
// that is a JournalError, not silent wrong state).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pcn/network.hpp"
#include "pcn/rebalancer.hpp"
#include "svc/journal.hpp"

namespace musketeer::svc {

/// The full recovery state captured by one checkpoint.
struct SnapshotData {
  /// Epoch the service resumes at (== epochs settled so far).
  int next_epoch = 0;
  /// network.state_digest() of the captured state; re-verified against
  /// the decoded network on every read.
  std::uint64_t digest = 0;
  /// Journal segment the recovery tail starts at: every record of an
  /// epoch >= next_epoch lives in segments >= first_segment.
  std::uint64_t first_segment = 0;
  /// Committed intake watermarks, sorted by player id.
  SeqWatermarks watermarks;
  /// Admission controller state at capture time.
  int shed_level = 0;
  double ewma_seconds = 0.0;
  /// encode_network() of the captured channel state.
  std::string network_bytes;
};

/// Network state <-> bytes (balances, fee rates, HTLC locks, disabled
/// flags — everything state_digest() covers). decode throws
/// core::CodecError on malformed bytes.
std::string encode_network(const pcn::Network& network);
pcn::Network decode_network(std::string_view bytes);

/// Path of snapshot `seq` for the journal at `base_path`
/// (`<base>.snap.<seq 6-digit>`).
std::string snapshot_path(const std::string& base_path, std::uint64_t seq);
/// Snapshot seqs present on disk for `base_path`, ascending. Read-only.
std::vector<std::uint64_t> list_snapshots(const std::string& base_path);

/// Owns the snapshot files beside a journal. Not internally locked: the
/// daemon writes from the epoch thread (under the service's clear lock)
/// and reads everything else at startup, before the service exists.
class SnapshotStore {
 public:
  struct Entry {
    std::uint64_t seq = 0;
    std::string path;
    /// Checksum intact and decoded network matches the stored digest.
    bool valid = false;
    /// Decoded header fields (meaningful only when valid).
    std::uint64_t first_segment = 0;
    int next_epoch = 0;
  };

  /// Scans (and fully validates) the snapshots at `base_path`. `keep`
  /// bounds how many snapshots survive each write (the newest `keep`).
  explicit SnapshotStore(std::string base_path, int keep = 2);

  const std::string& path() const { return path_; }
  /// Snapshots on disk, ascending seq, validation already done.
  const std::vector<Entry>& entries() const { return entries_; }

  /// Publishes `data` as the next snapshot (tmp + fsync + atomic rename
  /// + parent-dir fsync), then prunes all but the newest `keep`
  /// snapshots. Throws JournalError on I/O failure — with the previous
  /// snapshots and the journal untouched — and CrashPoint from the
  /// snapshot.write / snapshot.rename / disk.full fault hooks.
  void write(const SnapshotData& data);

  /// The oldest journal segment any on-disk snapshot still needs — the
  /// compaction bound: compact_below() of this is always safe. An
  /// invalid snapshot conservatively pins segment 0 (its fallback is a
  /// longer tail, possibly genesis); no snapshots at all pin segment 0.
  std::uint64_t oldest_retained_first_segment() const;

  /// Reads and fully validates one snapshot file. Returns false (with a
  /// diagnostic in `error` when non-null) on any corruption; never
  /// throws on bad bytes.
  static bool read_file(const std::string& file_path, SnapshotData* out,
                        std::string* error);

 private:
  std::string path_;
  int keep_;
  std::vector<Entry> entries_;
};

/// Checkpoint-aware recovery: restores the newest valid snapshot (or
/// the genesis `network` passed in, when none exists) and replays the
/// journal tail through the exactly-once replay machinery. On return
/// `network` holds the recovered state. Throws JournalError when no
/// valid snapshot exists and the journal's genesis history was
/// compacted away.
RecoveryReport recover(Journal& journal, const SnapshotStore& snapshots,
                       pcn::Network& network,
                       const pcn::RebalancePolicy& policy);

}  // namespace musketeer::svc
