#include "flow/decompose.hpp"

#include <algorithm>

namespace musketeer::flow {

std::vector<CycleFlow> decompose_sign_consistent(const Graph& g,
                                                 const Circulation& f) {
  DecomposeScratch scratch;
  return decompose_sign_consistent(g, f, scratch);
}

std::vector<CycleFlow> decompose_sign_consistent(const Graph& g,
                                                 const Circulation& f,
                                                 DecomposeScratch& scratch,
                                                 util::CancelToken* cancel) {
  MUSK_ASSERT_MSG(is_feasible(g, f), "can only decompose feasible circulations");
  Circulation& remaining = scratch.remaining;
  remaining = f;

  // Per-node cursor into out_edges so exhausted edges are skipped in
  // amortized constant time across the whole peel.
  std::vector<std::size_t>& cursor = scratch.cursor;
  cursor.assign(static_cast<std::size_t>(g.num_nodes()), 0);

  auto next_positive_out = [&](NodeId v) -> EdgeId {
    auto outs = g.out_edges(v);
    auto& cur = cursor[static_cast<std::size_t>(v)];
    while (cur < outs.size() &&
           remaining[static_cast<std::size_t>(outs[cur])] == 0) {
      ++cur;
    }
    return cur < outs.size() ? outs[cur] : -1;
  };

  std::vector<CycleFlow> cycles;
  // `on_path[v]` = position of v in the current walk, or -1.
  std::vector<int>& on_path = scratch.on_path;
  on_path.assign(static_cast<std::size_t>(g.num_nodes()), -1);

  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    for (;;) {
      MUSK_CANCEL_POINT(cancel);
      if (next_positive_out(start) < 0) break;
      // Walk forward along positive-flow edges until a node repeats.
      std::vector<NodeId>& path_nodes = scratch.path_nodes;
      std::vector<EdgeId>& path_edges = scratch.path_edges;
      path_nodes.clear();
      path_edges.clear();
      NodeId v = start;
      while (on_path[static_cast<std::size_t>(v)] < 0) {
        on_path[static_cast<std::size_t>(v)] =
            static_cast<int>(path_nodes.size());
        path_nodes.push_back(v);
        const EdgeId e = next_positive_out(v);
        // Flow conservation guarantees a positive out-edge exists at every
        // node the walk reaches (it got here via a positive in-edge).
        MUSK_ASSERT_MSG(e >= 0, "conservation violated during decomposition");
        path_edges.push_back(e);
        v = g.edge(e).to;
      }
      const int cycle_start = on_path[static_cast<std::size_t>(v)];
      CycleFlow cycle;
      cycle.edges.assign(path_edges.begin() + cycle_start, path_edges.end());
      Amount bottleneck = remaining[static_cast<std::size_t>(cycle.edges[0])];
      for (EdgeId e : cycle.edges) {
        bottleneck = std::min(bottleneck, remaining[static_cast<std::size_t>(e)]);
      }
      MUSK_ASSERT(bottleneck > 0);
      cycle.amount = bottleneck;
      for (EdgeId e : cycle.edges) {
        remaining[static_cast<std::size_t>(e)] -= bottleneck;
      }
      for (NodeId u : path_nodes) on_path[static_cast<std::size_t>(u)] = -1;
      cycles.push_back(std::move(cycle));
    }
  }
  MUSK_ASSERT(total_volume(remaining) == 0);
  MUSK_ASSERT(cycles.size() <= static_cast<std::size_t>(g.num_edges()));
#if defined(MUSKETEER_AUDIT)
  // Audit hook: full structural re-check (simple cycles, exact resum to f)
  // after every decomposition.
  MUSK_ASSERT_MSG(is_valid_decomposition(g, f, cycles),
                  "audit: decomposition failed the sign-consistency re-check");
#endif
  return cycles;
}

Circulation recompose(const Graph& g, const std::vector<CycleFlow>& cycles) {
  Circulation f = zero_circulation(g);
  for (const CycleFlow& cycle : cycles) {
    for (EdgeId e : cycle.edges) {
      f[static_cast<std::size_t>(e)] += cycle.amount;
    }
  }
  return f;
}

__int128 scaled_cycle_welfare(const Graph& g, const CycleFlow& cycle) {
  __int128 total = 0;
  for (EdgeId e : cycle.edges) {
    total += static_cast<__int128>(g.scaled_gain(e)) * cycle.amount;
  }
  return total;
}

double cycle_welfare(const Graph& g, const CycleFlow& cycle) {
  return static_cast<double>(scaled_cycle_welfare(g, cycle)) / kGainScale;
}

bool is_valid_decomposition(const Graph& g, const Circulation& f,
                            const std::vector<CycleFlow>& cycles) {
  for (const CycleFlow& cycle : cycles) {
    if (cycle.amount <= 0 || cycle.edges.empty()) return false;
    // Simple cycle: consecutive edges chain, last returns to first, and no
    // vertex repeats.
    std::vector<NodeId> seen;
    for (std::size_t i = 0; i < cycle.edges.size(); ++i) {
      const Edge& cur = g.edge(cycle.edges[i]);
      const Edge& next =
          g.edge(cycle.edges[(i + 1) % cycle.edges.size()]);
      if (cur.to != next.from) return false;
      seen.push_back(cur.from);
    }
    std::sort(seen.begin(), seen.end());
    if (std::adjacent_find(seen.begin(), seen.end()) != seen.end()) {
      return false;
    }
  }
  return recompose(g, cycles) == f;
}

}  // namespace musketeer::flow
