// Residual network of a circulation.
//
// Every graph edge contributes up to two residual arcs: a forward arc with
// the remaining capacity and cost -scaled_gain (pushing more flow earns
// the gain), and a backward arc with the current flow and cost
// +scaled_gain (retracting flow forfeits the gain). A circulation is
// welfare-optimal iff its residual network has no negative-cost cycle.
#pragma once

#include <vector>

#include "flow/circulation.hpp"
#include "flow/graph.hpp"

namespace musketeer::flow {

struct ResidualArc {
  NodeId from = 0;
  NodeId to = 0;
  /// Exact integer cost per unit (scaled by kGainScale).
  std::int64_t cost = 0;
  /// Units that may still be pushed along this arc.
  Amount residual = 0;
  /// Originating edge and direction (forward = same direction as edge).
  EdgeId edge = 0;
  bool forward = true;
};

/// Builds the residual arcs of `f` on `g`. Arcs with zero residual are
/// omitted.
std::vector<ResidualArc> build_residual(const Graph& g, const Circulation& f);

/// In-place variant: clears and refills `arcs`, reusing its capacity.
/// The hot path for solvers that rebuild the residual every iteration.
void build_residual(const Graph& g, const Circulation& f,
                    std::vector<ResidualArc>& arcs);

/// Applies `amount` units of flow along the given arcs (indices into
/// `arcs`) to the circulation: forward arcs gain flow, backward arcs lose
/// it. Caller guarantees `amount` does not exceed any arc's residual.
void push_along(const std::vector<ResidualArc>& arcs,
                const std::vector<int>& arc_indices, Amount amount,
                Circulation& f);

/// Minimum residual over the given arcs (the bottleneck).
Amount bottleneck(const std::vector<ResidualArc>& arcs,
                  const std::vector<int>& arc_indices);

}  // namespace musketeer::flow
