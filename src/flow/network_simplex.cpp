#include "flow/network_simplex.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/assert.hpp"

namespace musketeer::flow {

namespace {

enum class ArcState : signed char { kTree, kLower, kUpper };

using SimplexArc = SimplexScratch::Arc;
using Step = SimplexScratch::Step;

// The basis, flows, tree and potentials all live in the caller-provided
// SimplexScratch; this class is a view that (re)initializes them for one
// graph and runs pivots.
class NetworkSimplex {
 public:
  NetworkSimplex(const Graph& g, SimplexScratch& ws)
      : graph_(g),
        ws_(ws),
        num_real_(static_cast<std::size_t>(g.num_edges())),
        root_(g.num_nodes()) {
    const std::size_t n = static_cast<std::size_t>(g.num_nodes());
    std::int64_t max_cost = 1;
    Amount cap_sum = 1;
    auto& arcs = ws_.arcs;
    arcs.clear();
    arcs.reserve(num_real_ + n);
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const Edge& edge = g.edge(e);
      arcs.push_back(
          SimplexArc{edge.from, edge.to, edge.capacity, -g.scaled_gain(e)});
      max_cost = std::max(max_cost, std::abs(arcs.back().cost));
      cap_sum += edge.capacity;
    }
    // Artificial arcs v -> root with prohibitive cost; with zero node
    // balances they never carry flow (every root cycle is degenerate),
    // but they provide the initial spanning tree.
    const std::int64_t big_m =
        (static_cast<std::int64_t>(n) + 2) * (max_cost + 1);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      arcs.push_back(SimplexArc{v, root_, cap_sum, big_m});
    }
    ws_.flow.assign(arcs.size(), 0);
    ws_.state.assign(arcs.size(), static_cast<signed char>(ArcState::kLower));
    for (std::size_t a = num_real_; a < arcs.size(); ++a) {
      ws_.state[a] = static_cast<signed char>(ArcState::kTree);
    }
    rebuild_tree();
  }

  /// Runs pivots to optimality. Returns false if the pivot cap was hit
  /// (caller should fall back to a different solver).
  bool solve(SolveStats* stats, util::CancelToken* cancel) {
    const long long bland_threshold =
        16LL * static_cast<long long>(ws_.arcs.size()) + 256;
    const long long pivot_cap =
        256LL * static_cast<long long>(ws_.arcs.size()) + 4096;
    long long pivots = 0;
    for (;;) {
      MUSK_CANCEL_POINT(cancel);
      const bool bland = pivots > bland_threshold;
      const int entering = find_entering(bland);
      if (entering < 0) return true;
      if (++pivots > pivot_cap) return false;
      pivot(static_cast<std::size_t>(entering), bland);
      if (stats != nullptr) ++stats->cycles_cancelled;
    }
  }

  Circulation extract() const {
    Circulation f(num_real_);
    for (std::size_t a = 0; a < num_real_; ++a) f[a] = ws_.flow[a];
    return f;
  }

 private:
  ArcState state(std::size_t a) const {
    return static_cast<ArcState>(ws_.state[a]);
  }

  void set_state(std::size_t a, ArcState s) {
    ws_.state[a] = static_cast<signed char>(s);
  }

  std::int64_t reduced_cost(std::size_t a) const {
    return ws_.arcs[a].cost - ws_.pi[static_cast<std::size_t>(ws_.arcs[a].from)] +
           ws_.pi[static_cast<std::size_t>(ws_.arcs[a].to)];
  }

  // Entering rule: Dantzig (most violating) or Bland (first violating).
  int find_entering(bool bland) const {
    int best = -1;
    std::int64_t best_violation = 0;
    for (std::size_t a = 0; a < ws_.arcs.size(); ++a) {
      if (state(a) == ArcState::kTree) continue;
      const std::int64_t red = reduced_cost(a);
      std::int64_t violation = 0;
      if (state(a) == ArcState::kLower && red < 0) violation = -red;
      if (state(a) == ArcState::kUpper && red > 0) violation = red;
      if (violation == 0) continue;
      if (bland) return static_cast<int>(a);
      if (violation > best_violation) {
        best_violation = violation;
        best = static_cast<int>(a);
      }
    }
    return best;
  }

  // One pivot: push along the tree cycle closed by `entering`, kick out
  // the blocking arc (or bound-flip the entering arc itself).
  void pivot(std::size_t entering, bool bland) {
    auto& arcs = ws_.arcs;
    auto& flow = ws_.flow;
    // Conceptual push direction: along the arc when entering from its
    // lower bound, against it when entering from the upper bound.
    const bool from_lower = state(entering) == ArcState::kLower;
    const NodeId source = from_lower ? arcs[entering].from
                                     : arcs[entering].to;
    const NodeId target = from_lower ? arcs[entering].to
                                     : arcs[entering].from;

    // The cycle is: entering (source->target conceptually), then the
    // tree path target -> ... -> source. Collect the path arcs with
    // their traversal orientation.
    std::vector<Step>& path = ws_.path;
    {
      NodeId x = target, y = source;
      // Climb to equal depth, then in lockstep to the LCA. Record x-side
      // steps in order, y-side steps reversed at the end.
      std::vector<Step>& from_target = ws_.from_target;
      std::vector<Step>& from_source = ws_.from_source;
      from_target.clear();
      from_source.clear();
      auto step_up = [&](NodeId& v, std::vector<Step>& out, bool upward) {
        const std::size_t a = static_cast<std::size_t>(
            ws_.parent_arc[static_cast<std::size_t>(v)]);
        // Traversal v -> parent: forward iff the arc points v -> parent.
        const bool arc_points_up = arcs[a].from == v;
        // For the target side we walk with the cycle (v toward root);
        // for the source side we will traverse the arcs in the opposite
        // direction (root toward v), flipping the orientation.
        out.push_back(Step{a, upward ? arc_points_up : !arc_points_up});
        v = arcs[a].from == v ? arcs[a].to : arcs[a].from;
      };
      while (ws_.depth[static_cast<std::size_t>(x)] >
             ws_.depth[static_cast<std::size_t>(y)]) {
        step_up(x, from_target, true);
      }
      while (ws_.depth[static_cast<std::size_t>(y)] >
             ws_.depth[static_cast<std::size_t>(x)]) {
        step_up(y, from_source, false);
      }
      while (x != y) {
        step_up(x, from_target, true);
        step_up(y, from_source, false);
      }
      path.clear();
      path.insert(path.end(), from_target.begin(), from_target.end());
      path.insert(path.end(), from_source.rbegin(), from_source.rend());
    }

    // Headroom of the entering arc itself (a possible bound flip).
    Amount delta = from_lower ? arcs[entering].capacity - flow[entering]
                              : flow[entering];
    std::size_t leaving = entering;
    bool leaving_at_upper = from_lower;  // where the entering arc would land
    for (const Step& step : path) {
      const Amount headroom = step.forward
                                  ? arcs[step.arc].capacity - flow[step.arc]
                                  : flow[step.arc];
      // Strictly smaller headroom always wins; on ties Bland's rule picks
      // the lowest arc index among the blocking arcs (anti-cycling).
      const bool take = headroom < delta ||
                        (bland && headroom == delta && step.arc < leaving);
      if (take) {
        delta = headroom;
        leaving = step.arc;
        leaving_at_upper = step.forward;  // saturates at capacity if forward
      }
    }

    // Apply the push.
    if (delta > 0) {
      flow[entering] += from_lower ? delta : -delta;
      for (const Step& step : path) {
        flow[step.arc] += step.forward ? delta : -delta;
      }
    }

    if (leaving == entering) {
      // Bound flip: the entering arc traversed to its other bound.
      set_state(entering, from_lower ? ArcState::kUpper : ArcState::kLower);
      return;
    }
    set_state(entering, ArcState::kTree);
    set_state(leaving,
              leaving_at_upper ? ArcState::kUpper : ArcState::kLower);
    MUSK_ASSERT(flow[leaving] == 0 ||
                flow[leaving] == arcs[leaving].capacity);
    rebuild_tree();
  }

  // Recomputes parent pointers, depths and potentials from the current
  // tree arcs (BFS from the root). O(n + m).
  void rebuild_tree() {
    const std::size_t nodes = static_cast<std::size_t>(root_) + 1;
    ws_.parent_arc.assign(nodes, -1);
    ws_.depth.assign(nodes, -1);
    ws_.pi.assign(nodes, 0);

    // Tree adjacency (outer vector resized; inner vectors keep capacity).
    std::vector<std::vector<std::size_t>>& adjacency = ws_.adjacency;
    if (adjacency.size() < nodes) adjacency.resize(nodes);
    for (std::size_t v = 0; v < nodes; ++v) adjacency[v].clear();
    for (std::size_t a = 0; a < ws_.arcs.size(); ++a) {
      if (state(a) != ArcState::kTree) continue;
      adjacency[static_cast<std::size_t>(ws_.arcs[a].from)].push_back(a);
      adjacency[static_cast<std::size_t>(ws_.arcs[a].to)].push_back(a);
    }
    std::vector<NodeId>& queue = ws_.bfs_queue;
    queue.clear();
    queue.push_back(root_);
    ws_.depth[static_cast<std::size_t>(root_)] = 0;
    ws_.pi[static_cast<std::size_t>(root_)] = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId v = queue[head];
      for (std::size_t a : adjacency[static_cast<std::size_t>(v)]) {
        const NodeId w =
            ws_.arcs[a].from == v ? ws_.arcs[a].to : ws_.arcs[a].from;
        if (ws_.depth[static_cast<std::size_t>(w)] >= 0) continue;
        ws_.depth[static_cast<std::size_t>(w)] =
            ws_.depth[static_cast<std::size_t>(v)] + 1;
        ws_.parent_arc[static_cast<std::size_t>(w)] = static_cast<int>(a);
        // Tree arcs have zero reduced cost: c - pi_from + pi_to = 0.
        if (ws_.arcs[a].from == w) {
          ws_.pi[static_cast<std::size_t>(w)] =
              ws_.arcs[a].cost + ws_.pi[static_cast<std::size_t>(v)];
        } else {
          ws_.pi[static_cast<std::size_t>(w)] =
              ws_.pi[static_cast<std::size_t>(v)] - ws_.arcs[a].cost;
        }
        queue.push_back(w);
      }
    }
    MUSK_ASSERT_MSG(queue.size() == nodes, "basis must span all nodes");
  }

  const Graph& graph_;
  SimplexScratch& ws_;
  std::size_t num_real_;
  NodeId root_;
};

}  // namespace

Circulation solve_network_simplex(const Graph& g, SolveStats* stats) {
  Workspace ws;
  return solve_network_simplex(g, ws, stats);
}

Circulation solve_network_simplex(const Graph& g, Workspace& ws,
                                  SolveStats* stats,
                                  util::CancelToken* cancel) {
  if (g.num_edges() == 0) return zero_circulation(g);
  NetworkSimplex simplex(g, ws.ns);
  if (!simplex.solve(stats, cancel)) {
    // Degenerate pivoting hit the cap: fall back to the proven canceller
    // rather than risk a stale answer. Surface the event so benchmarks
    // and callers can see that the reported timings include a fallback.
    if (stats != nullptr) ++stats->fallbacks;
    return solve_max_welfare(g, ws, SolverKind::kBellmanFord, stats, cancel);
  }
  Circulation f = simplex.extract();
  MUSK_ASSERT_MSG(is_feasible(g, f),
                  "network simplex produced an infeasible circulation");
#if defined(MUSKETEER_AUDIT)
  // Audit hook: a spanning basis with no violating reduced cost must be
  // optimal — re-certify with the independent residual-cycle test.
  MUSK_ASSERT_MSG(is_optimal(g, f),
                  "audit: network simplex basis optimality disagrees with "
                  "the residual-cycle certificate");
#endif
  return f;
}

}  // namespace musketeer::flow
