#include "flow/network_simplex.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/assert.hpp"

namespace musketeer::flow {

namespace {

enum class ArcState : signed char { kTree, kLower, kUpper };

struct SimplexArc {
  NodeId from = 0;
  NodeId to = 0;
  Amount capacity = 0;
  std::int64_t cost = 0;  // minimization cost = -scaled gain
};

class NetworkSimplex {
 public:
  explicit NetworkSimplex(const Graph& g)
      : graph_(g),
        num_real_(static_cast<std::size_t>(g.num_edges())),
        root_(g.num_nodes()) {
    const std::size_t n = static_cast<std::size_t>(g.num_nodes());
    std::int64_t max_cost = 1;
    Amount cap_sum = 1;
    arcs_.reserve(num_real_ + n);
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const Edge& edge = g.edge(e);
      arcs_.push_back(
          SimplexArc{edge.from, edge.to, edge.capacity, -g.scaled_gain(e)});
      max_cost = std::max(max_cost, std::abs(arcs_.back().cost));
      cap_sum += edge.capacity;
    }
    // Artificial arcs v -> root with prohibitive cost; with zero node
    // balances they never carry flow (every root cycle is degenerate),
    // but they provide the initial spanning tree.
    const std::int64_t big_m =
        (static_cast<std::int64_t>(n) + 2) * (max_cost + 1);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      arcs_.push_back(SimplexArc{v, root_, cap_sum, big_m});
    }
    flow_.assign(arcs_.size(), 0);
    state_.assign(arcs_.size(), ArcState::kLower);
    for (std::size_t a = num_real_; a < arcs_.size(); ++a) {
      state_[a] = ArcState::kTree;
    }
    rebuild_tree();
  }

  /// Runs pivots to optimality. Returns false if the pivot cap was hit
  /// (caller should fall back to a different solver).
  bool solve(SolveStats* stats) {
    const long long bland_threshold =
        16LL * static_cast<long long>(arcs_.size()) + 256;
    const long long pivot_cap =
        256LL * static_cast<long long>(arcs_.size()) + 4096;
    long long pivots = 0;
    for (;;) {
      const bool bland = pivots > bland_threshold;
      const int entering = find_entering(bland);
      if (entering < 0) return true;
      if (++pivots > pivot_cap) return false;
      pivot(static_cast<std::size_t>(entering), bland);
      if (stats != nullptr) ++stats->cycles_cancelled;
    }
  }

  Circulation extract() const {
    Circulation f(num_real_);
    for (std::size_t a = 0; a < num_real_; ++a) f[a] = flow_[a];
    return f;
  }

 private:
  std::int64_t reduced_cost(std::size_t a) const {
    return arcs_[a].cost - pi_[static_cast<std::size_t>(arcs_[a].from)] +
           pi_[static_cast<std::size_t>(arcs_[a].to)];
  }

  // Entering rule: Dantzig (most violating) or Bland (first violating).
  int find_entering(bool bland) const {
    int best = -1;
    std::int64_t best_violation = 0;
    for (std::size_t a = 0; a < arcs_.size(); ++a) {
      if (state_[a] == ArcState::kTree) continue;
      const std::int64_t red = reduced_cost(a);
      std::int64_t violation = 0;
      if (state_[a] == ArcState::kLower && red < 0) violation = -red;
      if (state_[a] == ArcState::kUpper && red > 0) violation = red;
      if (violation == 0) continue;
      if (bland) return static_cast<int>(a);
      if (violation > best_violation) {
        best_violation = violation;
        best = static_cast<int>(a);
      }
    }
    return best;
  }

  // One pivot: push along the tree cycle closed by `entering`, kick out
  // the blocking arc (or bound-flip the entering arc itself).
  void pivot(std::size_t entering, bool bland) {
    // Conceptual push direction: along the arc when entering from its
    // lower bound, against it when entering from the upper bound.
    const bool from_lower = state_[entering] == ArcState::kLower;
    const NodeId source = from_lower ? arcs_[entering].from
                                     : arcs_[entering].to;
    const NodeId target = from_lower ? arcs_[entering].to
                                     : arcs_[entering].from;

    // The cycle is: entering (source->target conceptually), then the
    // tree path target -> ... -> source. Collect the path arcs with
    // their traversal orientation.
    struct Step {
      std::size_t arc;
      bool forward;  // cycle traverses the arc in its own direction
    };
    std::vector<Step> path;
    {
      NodeId x = target, y = source;
      // Climb to equal depth, then in lockstep to the LCA. Record x-side
      // steps in order, y-side steps reversed at the end.
      std::vector<Step> from_target, from_source;
      auto step_up = [&](NodeId& v, std::vector<Step>& out, bool upward) {
        const std::size_t a =
            static_cast<std::size_t>(parent_arc_[static_cast<std::size_t>(v)]);
        // Traversal v -> parent: forward iff the arc points v -> parent.
        const bool arc_points_up = arcs_[a].from == v;
        // For the target side we walk with the cycle (v toward root);
        // for the source side we will traverse the arcs in the opposite
        // direction (root toward v), flipping the orientation.
        out.push_back(Step{a, upward ? arc_points_up : !arc_points_up});
        v = arcs_[a].from == v ? arcs_[a].to : arcs_[a].from;
      };
      while (depth_[static_cast<std::size_t>(x)] >
             depth_[static_cast<std::size_t>(y)]) {
        step_up(x, from_target, true);
      }
      while (depth_[static_cast<std::size_t>(y)] >
             depth_[static_cast<std::size_t>(x)]) {
        step_up(y, from_source, false);
      }
      while (x != y) {
        step_up(x, from_target, true);
        step_up(y, from_source, false);
      }
      path = std::move(from_target);
      path.insert(path.end(), from_source.rbegin(), from_source.rend());
    }

    // Headroom of the entering arc itself (a possible bound flip).
    Amount delta = from_lower ? arcs_[entering].capacity - flow_[entering]
                              : flow_[entering];
    std::size_t leaving = entering;
    bool leaving_at_upper = from_lower;  // where the entering arc would land
    for (const Step& step : path) {
      const Amount headroom = step.forward
                                  ? arcs_[step.arc].capacity - flow_[step.arc]
                                  : flow_[step.arc];
      // Strictly smaller headroom always wins; on ties Bland's rule picks
      // the lowest arc index among the blocking arcs (anti-cycling).
      const bool take = headroom < delta ||
                        (bland && headroom == delta && step.arc < leaving);
      if (take) {
        delta = headroom;
        leaving = step.arc;
        leaving_at_upper = step.forward;  // saturates at capacity if forward
      }
    }

    // Apply the push.
    if (delta > 0) {
      flow_[entering] += from_lower ? delta : -delta;
      for (const Step& step : path) {
        flow_[step.arc] += step.forward ? delta : -delta;
      }
    }

    if (leaving == entering) {
      // Bound flip: the entering arc traversed to its other bound.
      state_[entering] = from_lower ? ArcState::kUpper : ArcState::kLower;
      return;
    }
    state_[entering] = ArcState::kTree;
    state_[leaving] =
        leaving_at_upper ? ArcState::kUpper : ArcState::kLower;
    MUSK_ASSERT(flow_[leaving] == 0 ||
                flow_[leaving] == arcs_[leaving].capacity);
    rebuild_tree();
  }

  // Recomputes parent pointers, depths and potentials from the current
  // tree arcs (BFS from the root). O(n + m).
  void rebuild_tree() {
    const std::size_t nodes = static_cast<std::size_t>(root_) + 1;
    parent_arc_.assign(nodes, -1);
    depth_.assign(nodes, -1);
    pi_.assign(nodes, 0);

    // Tree adjacency.
    std::vector<std::vector<std::size_t>> adjacency(nodes);
    for (std::size_t a = 0; a < arcs_.size(); ++a) {
      if (state_[a] != ArcState::kTree) continue;
      adjacency[static_cast<std::size_t>(arcs_[a].from)].push_back(a);
      adjacency[static_cast<std::size_t>(arcs_[a].to)].push_back(a);
    }
    std::vector<NodeId> queue{root_};
    depth_[static_cast<std::size_t>(root_)] = 0;
    pi_[static_cast<std::size_t>(root_)] = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId v = queue[head];
      for (std::size_t a : adjacency[static_cast<std::size_t>(v)]) {
        const NodeId w =
            arcs_[a].from == v ? arcs_[a].to : arcs_[a].from;
        if (depth_[static_cast<std::size_t>(w)] >= 0) continue;
        depth_[static_cast<std::size_t>(w)] =
            depth_[static_cast<std::size_t>(v)] + 1;
        parent_arc_[static_cast<std::size_t>(w)] = static_cast<int>(a);
        // Tree arcs have zero reduced cost: c - pi_from + pi_to = 0.
        if (arcs_[a].from == w) {
          pi_[static_cast<std::size_t>(w)] =
              arcs_[a].cost + pi_[static_cast<std::size_t>(v)];
        } else {
          pi_[static_cast<std::size_t>(w)] =
              pi_[static_cast<std::size_t>(v)] - arcs_[a].cost;
        }
        queue.push_back(w);
      }
    }
    MUSK_ASSERT_MSG(queue.size() == nodes, "basis must span all nodes");
  }

  const Graph& graph_;
  std::size_t num_real_;
  NodeId root_;
  std::vector<SimplexArc> arcs_;
  std::vector<Amount> flow_;
  std::vector<ArcState> state_;
  std::vector<int> parent_arc_;
  std::vector<int> depth_;
  std::vector<std::int64_t> pi_;
};

}  // namespace

Circulation solve_network_simplex(const Graph& g, SolveStats* stats) {
  if (g.num_edges() == 0) return zero_circulation(g);
  NetworkSimplex simplex(g);
  if (!simplex.solve(stats)) {
    // Degenerate pivoting hit the cap: fall back to the proven canceller
    // rather than risk a stale answer.
    return solve_max_welfare(g, SolverKind::kBellmanFord, stats);
  }
  Circulation f = simplex.extract();
  MUSK_ASSERT_MSG(is_feasible(g, f),
                  "network simplex produced an infeasible circulation");
#if defined(MUSKETEER_AUDIT)
  // Audit hook: a spanning basis with no violating reduced cost must be
  // optimal — re-certify with the independent residual-cycle test.
  MUSK_ASSERT_MSG(is_optimal(g, f),
                  "audit: network simplex basis optimality disagrees with "
                  "the residual-cycle certificate");
#endif
  return f;
}

}  // namespace musketeer::flow
