#include "flow/solve_context.hpp"

namespace musketeer::flow {

void SolveContext::rebind_gains(std::span<const double> gains) {
  MUSK_ASSERT_MSG(bound_, "rebind_gains before bind");
  MUSK_ASSERT(static_cast<EdgeId>(gains.size()) == graph_.num_edges());
  for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
    graph_.set_gain(e, gains[static_cast<std::size_t>(e)]);
  }
  ++stats_.rebinds;
}

void SolveContext::mask_player(NodeId v) {
  MUSK_ASSERT_MSG(bound_, "mask_player before bind");
  MUSK_ASSERT_MSG(masked_player_ < 0, "a capacity mask is already active");
  MUSK_ASSERT(v >= 0 && v < graph_.num_nodes());
  saved_caps_.clear();
  // No self-loops, so out- and in-incidence are disjoint edge sets.
  for (EdgeId e : graph_.out_edges(v)) {
    saved_caps_.emplace_back(e, graph_.edge(e).capacity);
    graph_.set_capacity(e, 0);
  }
  for (EdgeId e : graph_.in_edges(v)) {
    saved_caps_.emplace_back(e, graph_.edge(e).capacity);
    graph_.set_capacity(e, 0);
  }
  masked_player_ = v;
}

void SolveContext::unmask() {
  MUSK_ASSERT_MSG(masked_player_ >= 0, "unmask without an active mask");
  for (const auto& [e, cap] : saved_caps_) {
    graph_.set_capacity(e, cap);
  }
  saved_caps_.clear();
  masked_player_ = -1;
}

Circulation SolveContext::solve(SolverKind kind, SolveStats* stats) {
  MUSK_ASSERT_MSG(bound_, "SolveContext::solve before bind");
  SolveStats local;
  Circulation f = solve_max_welfare(graph_, ws_, kind, &local);
  local.graph_rebuilds =
      static_cast<int>(stats_.structure_builds - builds_at_last_solve_);
  builds_at_last_solve_ = stats_.structure_builds;
  ++stats_.solves;
  stats_.fallbacks += local.fallbacks;
  if (stats != nullptr) {
    stats->cycles_cancelled += local.cycles_cancelled;
    stats->units_pushed += local.units_pushed;
    stats->fallbacks += local.fallbacks;
    stats->graph_rebuilds += local.graph_rebuilds;
  }
  return f;
}

std::vector<CycleFlow> SolveContext::decompose(const Circulation& f) {
  MUSK_ASSERT_MSG(bound_, "SolveContext::decompose before bind");
  return decompose_sign_consistent(graph_, f, ws_.dec);
}

SolveContext& local_context() {
  thread_local SolveContext context;
  return context;
}

}  // namespace musketeer::flow
