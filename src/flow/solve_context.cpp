#include "flow/solve_context.hpp"

#include "obs/obs.hpp"

namespace musketeer::flow {

namespace {

const char* solver_kind_name(SolverKind kind) {
  switch (kind) {
    case SolverKind::kBellmanFord: return "bellman_ford";
    case SolverKind::kMinMean: return "min_mean";
    case SolverKind::kCapacityScaling: return "capacity_scaling";
    case SolverKind::kNetworkSimplex: return "network_simplex";
  }
  return "unknown";
}

/// Static span names so Event can store them by pointer. (Unused when
/// the MUSK_OBS_SPAN macro compiles to nothing.)
[[maybe_unused]] const char* solve_span_name(SolverKind kind) {
  switch (kind) {
    case SolverKind::kBellmanFord: return "flow.solve/bellman_ford";
    case SolverKind::kMinMean: return "flow.solve/min_mean";
    case SolverKind::kCapacityScaling: return "flow.solve/capacity_scaling";
    case SolverKind::kNetworkSimplex: return "flow.solve/network_simplex";
  }
  return "flow.solve/unknown";
}

}  // namespace

void SolveContext::rebind_gains(std::span<const double> gains) {
  MUSK_ASSERT_MSG(bound_, "rebind_gains before bind");
  MUSK_ASSERT(static_cast<EdgeId>(gains.size()) == graph_.num_edges());
  for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
    graph_.set_gain(e, gains[static_cast<std::size_t>(e)]);
  }
  ++stats_.rebinds;
}

void SolveContext::mask_player(NodeId v) {
  MUSK_ASSERT_MSG(bound_, "mask_player before bind");
  MUSK_ASSERT_MSG(masked_player_ < 0, "a capacity mask is already active");
  MUSK_ASSERT(v >= 0 && v < graph_.num_nodes());
  saved_caps_.clear();
  // No self-loops, so out- and in-incidence are disjoint edge sets.
  for (EdgeId e : graph_.out_edges(v)) {
    saved_caps_.emplace_back(e, graph_.edge(e).capacity);
    graph_.set_capacity(e, 0);
  }
  for (EdgeId e : graph_.in_edges(v)) {
    saved_caps_.emplace_back(e, graph_.edge(e).capacity);
    graph_.set_capacity(e, 0);
  }
  masked_player_ = v;
}

void SolveContext::unmask() {
  MUSK_ASSERT_MSG(masked_player_ >= 0, "unmask without an active mask");
  for (const auto& [e, cap] : saved_caps_) {
    graph_.set_capacity(e, cap);
  }
  saved_caps_.clear();
  masked_player_ = -1;
}

Circulation SolveContext::solve(SolverKind kind, SolveStats* stats) {
  MUSK_ASSERT_MSG(bound_, "SolveContext::solve before bind");
  MUSK_OBS_SPAN(span, solve_span_name(kind));
  span.set_detail(solver_kind_name(kind));
  SolveStats local;
  Circulation f = solve_max_welfare(graph_, ws_, kind, &local);
  local.graph_rebuilds =
      static_cast<int>(stats_.structure_builds - builds_at_last_solve_);
  builds_at_last_solve_ = stats_.structure_builds;
  ++stats_.solves;
  stats_.fallbacks += local.fallbacks;
  MUSK_OBS_COUNT("flow.solve.total", 1);
  MUSK_OBS_COUNT("flow.solve.fallback_total",
                 static_cast<std::uint64_t>(local.fallbacks));
  MUSK_OBS_HISTOGRAM("flow.solve.seconds", span.end());
  if (stats != nullptr) {
    stats->cycles_cancelled += local.cycles_cancelled;
    stats->units_pushed += local.units_pushed;
    stats->fallbacks += local.fallbacks;
    stats->graph_rebuilds += local.graph_rebuilds;
  }
  return f;
}

std::vector<CycleFlow> SolveContext::decompose(const Circulation& f) {
  MUSK_ASSERT_MSG(bound_, "SolveContext::decompose before bind");
  MUSK_OBS_SPAN(span, "flow.decompose");
  std::vector<CycleFlow> cycles = decompose_sign_consistent(graph_, f, ws_.dec);
  MUSK_OBS_COUNT("flow.decompose.cycles_total", cycles.size());
  MUSK_OBS_HISTOGRAM("flow.decompose.seconds", span.end());
  return cycles;
}

SolveContext& local_context() {
  thread_local SolveContext context;
  return context;
}

}  // namespace musketeer::flow
