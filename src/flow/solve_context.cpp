#include "flow/solve_context.hpp"

#include "obs/obs.hpp"

namespace musketeer::flow {

namespace {

const char* solver_kind_name(SolverKind kind) {
  switch (kind) {
    case SolverKind::kBellmanFord: return "bellman_ford";
    case SolverKind::kMinMean: return "min_mean";
    case SolverKind::kCapacityScaling: return "capacity_scaling";
    case SolverKind::kNetworkSimplex: return "network_simplex";
  }
  return "unknown";
}

/// Static span names so Event can store them by pointer. (Unused when
/// the MUSK_OBS_SPAN macro compiles to nothing.)
[[maybe_unused]] const char* solve_span_name(SolverKind kind) {
  switch (kind) {
    case SolverKind::kBellmanFord: return "flow.solve/bellman_ford";
    case SolverKind::kMinMean: return "flow.solve/min_mean";
    case SolverKind::kCapacityScaling: return "flow.solve/capacity_scaling";
    case SolverKind::kNetworkSimplex: return "flow.solve/network_simplex";
  }
  return "flow.solve/unknown";
}

}  // namespace

void SolveContext::rebind_gains(std::span<const double> gains) {
  MUSK_ASSERT_MSG(bound_, "rebind_gains before bind");
  MUSK_ASSERT(static_cast<EdgeId>(gains.size()) == graph_.num_edges());
  for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
    graph_.set_gain(e, gains[static_cast<std::size_t>(e)]);
  }
  ++stats_.rebinds;
}

void SolveContext::mask_player(NodeId v) {
  MUSK_ASSERT_MSG(bound_, "mask_player before bind");
  MUSK_ASSERT_MSG(masked_player_ < 0, "a capacity mask is already active");
  MUSK_ASSERT(v >= 0 && v < graph_.num_nodes());
  saved_caps_.clear();
  // No self-loops, so out- and in-incidence are disjoint edge sets.
  for (EdgeId e : graph_.out_edges(v)) {
    saved_caps_.emplace_back(e, graph_.edge(e).capacity);
    graph_.set_capacity(e, 0);
  }
  for (EdgeId e : graph_.in_edges(v)) {
    saved_caps_.emplace_back(e, graph_.edge(e).capacity);
    graph_.set_capacity(e, 0);
  }
  masked_player_ = v;

  // Route the mask to v's component slot so the next sharded solve
  // re-solves only that component. A stale pool (no sharded solve since
  // the last bind) is left alone: solve() falls back to the monolithic
  // path for the masked call, which is bit-identical anyway.
  mask_in_slots_ = sharding_enabled() && shards_current();
  masked_slot_ = kNoComponent;
  if (mask_in_slots_) {
    const int c = partitioner_.partition().component_of(v);
    masked_slot_ = c;
    if (c != kNoComponent) {
      ComponentSlot& slot = slots_[static_cast<std::size_t>(c)];
      slot_saved_caps_.clear();
      for (const EdgeId local : slot.graph.out_edges(v)) {
        slot_saved_caps_.emplace_back(local, slot.graph.edge(local).capacity);
        slot.graph.set_capacity(local, 0);
      }
      for (const EdgeId local : slot.graph.in_edges(v)) {
        slot_saved_caps_.emplace_back(local, slot.graph.edge(local).capacity);
        slot.graph.set_capacity(local, 0);
      }
      slot_saved_flow_ = slot.flow;
      slot_saved_clean_ = slot.clean;
      slot.clean = false;
    }
  }
}

void SolveContext::unmask() {
  MUSK_ASSERT_MSG(masked_player_ >= 0, "unmask without an active mask");
  for (const auto& [e, cap] : saved_caps_) {
    graph_.set_capacity(e, cap);
  }
  saved_caps_.clear();
  masked_player_ = -1;

  if (mask_in_slots_ && masked_slot_ != kNoComponent) {
    // Restore the slot's capacities AND its pre-mask cached flow: the
    // unmasked optimum of an untouched component is deterministic, so
    // the saved cache is exactly what a re-solve would produce.
    ComponentSlot& slot = slots_[static_cast<std::size_t>(masked_slot_)];
    for (const auto& [local, cap] : slot_saved_caps_) {
      slot.graph.set_capacity(local, cap);
    }
    slot_saved_caps_.clear();
    slot.flow = std::move(slot_saved_flow_);
    slot_saved_flow_ = Circulation();
    slot.clean = slot_saved_clean_;
  }
  mask_in_slots_ = false;
  masked_slot_ = kNoComponent;
}

void SolveContext::ensure_shards() {
  MUSK_ASSERT_MSG(masked_player_ < 0,
                  "shard pool may not be (re)built under an active mask");
  if (shard_builds_mark_ != stats_.structure_builds) {
    // Topology changed: re-partition and rebuild every slot graph. Each
    // slot build is a real graph construction and is counted as one, so
    // SolveStats::graph_rebuilds sums the sharded path's rebuild work
    // across components instead of sampling one.
    const Partition& part = partitioner_.run(graph_);
    const int k = part.num_components();
    slots_.resize(static_cast<std::size_t>(k));
    for (int c = 0; c < k; ++c) {
      ComponentSlot& slot = slots_[static_cast<std::size_t>(c)];
      const std::span<const EdgeId> edges = part.edges(c);
      slot.edges.assign(edges.begin(), edges.end());
      Graph g(graph_.num_nodes());
      for (const EdgeId e : slot.edges) {
        const Edge& edge = graph_.edge(e);
        g.add_edge(edge.from, edge.to, edge.capacity, edge.gain);
      }
      slot.graph = std::move(g);
      slot.clean = false;
      ++stats_.structure_builds;
      MUSK_OBS_COUNT("flow.graph.build_total", 1);
    }
    shard_builds_mark_ = stats_.structure_builds;
    shard_sync_mark_ = stats_.structure_builds + stats_.rebinds;
  } else if (shard_sync_mark_ != stats_.structure_builds + stats_.rebinds) {
    // Same topology, fresh capacities/gains (a rebind): refresh every
    // slot in place — the sharded analogue of the zero-rebuild rebind.
    for (ComponentSlot& slot : slots_) {
      for (std::size_t i = 0; i < slot.edges.size(); ++i) {
        const Edge& edge = graph_.edge(slot.edges[i]);
        const EdgeId local = static_cast<EdgeId>(i);
        slot.graph.set_capacity(local, edge.capacity);
        slot.graph.set_gain(local, edge.gain);
      }
      slot.clean = false;
    }
    shard_sync_mark_ = stats_.structure_builds + stats_.rebinds;
  }
}

Circulation SolveContext::solve(SolverKind kind, SolveStats* stats) {
  MUSK_ASSERT_MSG(bound_, "SolveContext::solve before bind");
  // A masked solve may use the shard pool only if the mask reached it
  // and nothing re-bound the context since (a stale pool would solve
  // yesterday's gains). The monolithic fallback is bit-identical.
  const bool masked_shardable = mask_in_slots_ && shards_current();
  const bool monolith =
      !sharding_enabled() || (masked_player_ >= 0 && !masked_shardable);
  try {
    return monolith ? solve_monolith(kind, stats)
                    : solve_sharded(kind, stats);
  } catch (const util::SolveCancelled&) {
    // All-or-nothing: the partial iterate died with the unwind (sharded
    // merges happen only after every task finished), so the caller sees
    // no result at all. Completed component slots keep their cached
    // optimum; interrupted ones stay dirty and re-solve next call.
    cancel_dirty_ = true;
    ++stats_.cancelled;
    if (stats != nullptr) ++stats->cancelled;
    MUSK_OBS_COUNT("flow.solve.cancelled_total", 1);
    throw;
  }
}

Circulation SolveContext::solve_monolith(SolverKind kind, SolveStats* stats) {
  MUSK_OBS_SPAN(span, solve_span_name(kind));
  span.set_detail(solver_kind_name(kind));
  SolveStats local;
  if (cancel_dirty_) {
    // The whole-graph re-run after an interrupted solve counts as one
    // rebound unit of work (the monolith has a single "slot").
    local.rebinds_after_cancel = 1;
    cancel_dirty_ = false;
  }
  Circulation f = solve_max_welfare(graph_, ws_, kind, &local, cancel_);
  local.graph_rebuilds =
      static_cast<int>(stats_.structure_builds - builds_at_last_solve_);
  builds_at_last_solve_ = stats_.structure_builds;
  ++stats_.solves;
  stats_.fallbacks += local.fallbacks;
  last_components_ = graph_.num_edges() > 0 ? 1 : 0;
  last_largest_component_ = graph_.num_edges();
  MUSK_OBS_COUNT("flow.solve.total", 1);
  MUSK_OBS_COUNT("flow.solve.fallback_total",
                 static_cast<std::uint64_t>(local.fallbacks));
  MUSK_OBS_HISTOGRAM("flow.solve.seconds", span.end());
  if (stats != nullptr) {
    stats->cycles_cancelled += local.cycles_cancelled;
    stats->units_pushed += local.units_pushed;
    stats->fallbacks += local.fallbacks;
    stats->graph_rebuilds += local.graph_rebuilds;
    stats->rebinds_after_cancel += local.rebinds_after_cancel;
  }
  return f;
}

Circulation SolveContext::solve_sharded(SolverKind kind, SolveStats* stats) {
  MUSK_OBS_SPAN(span, solve_span_name(kind));
  span.set_detail(solver_kind_name(kind));
  if (masked_player_ < 0) ensure_shards();

  // Solve the dirty slots as disjoint executor tasks. Clean slots keep
  // their cached optimum: a deterministic solver re-run on unchanged
  // inputs would reproduce it bit for bit, so skipping it is exact.
  dirty_slots_.clear();
  for (std::size_t c = 0; c < slots_.size(); ++c) {
    if (!slots_[c].clean) dirty_slots_.push_back(static_cast<int>(c));
  }
  int rebinds_after_cancel = 0;
  if (cancel_dirty_) {
    // Every slot the interrupted solve left (or made) dirty re-runs now.
    rebinds_after_cancel = static_cast<int>(dirty_slots_.size());
    cancel_dirty_ = false;
  }
  slot_stats_.assign(dirty_slots_.size(), SolveStats{});
  executor_->run(dirty_slots_.size(), [&](std::size_t i) {
    ComponentSlot& slot =
        slots_[static_cast<std::size_t>(dirty_slots_[i])];
    MUSK_OBS_SPAN(component_span, "core.solve.component");
    component_span.set_detail(solver_kind_name(kind));
    slot.flow =
        solve_max_welfare(slot.graph, slot.ws, kind, &slot_stats_[i], cancel_);
    slot.clean = true;
    MUSK_OBS_HISTOGRAM("core.solve.component.seconds", component_span.end());
  });

  // Deterministic merge in component-id order: scatter each component's
  // local flows to their global edge ids and sum the per-component
  // counters (never "last component wins").
  Circulation f = zero_circulation(graph_);
  for (const ComponentSlot& slot : slots_) {
    for (std::size_t i = 0; i < slot.edges.size(); ++i) {
      f[static_cast<std::size_t>(slot.edges[i])] = slot.flow[i];
    }
  }
  SolveStats local;
  local.rebinds_after_cancel = rebinds_after_cancel;
  for (const SolveStats& s : slot_stats_) {
    local.cycles_cancelled += s.cycles_cancelled;
    local.units_pushed += s.units_pushed;
    local.fallbacks += s.fallbacks;
  }
  local.graph_rebuilds =
      static_cast<int>(stats_.structure_builds - builds_at_last_solve_);
  builds_at_last_solve_ = stats_.structure_builds;
  ++stats_.solves;
  stats_.fallbacks += local.fallbacks;
  last_components_ = static_cast<int>(slots_.size());
  last_largest_component_ = partitioner_.partition().largest_component_edges();

#if defined(MUSKETEER_AUDIT)
  // Each component task already re-certified its own optimality; the
  // merged circulation must additionally conserve flow on the full
  // graph (components share no edges, so this can only fail on a
  // merge-order bug — exactly what it is here to catch).
  MUSK_ASSERT_MSG(is_feasible(graph_, f),
                  "audit: sharded merge produced an infeasible circulation");
#endif

  MUSK_OBS_COUNT("flow.solve.total", 1);
  MUSK_OBS_COUNT("flow.solve.sharded_total", 1);
  MUSK_OBS_COUNT("flow.solve.fallback_total",
                 static_cast<std::uint64_t>(local.fallbacks));
  MUSK_OBS_HISTOGRAM("flow.solve.seconds", span.end());
  if (stats != nullptr) {
    stats->cycles_cancelled += local.cycles_cancelled;
    stats->units_pushed += local.units_pushed;
    stats->fallbacks += local.fallbacks;
    stats->graph_rebuilds += local.graph_rebuilds;
    stats->rebinds_after_cancel += local.rebinds_after_cancel;
  }
  return f;
}

std::vector<CycleFlow> SolveContext::decompose(const Circulation& f) {
  MUSK_ASSERT_MSG(bound_, "SolveContext::decompose before bind");
  MUSK_OBS_SPAN(span, "flow.decompose");
  std::vector<CycleFlow> cycles =
      decompose_sign_consistent(graph_, f, ws_.dec, cancel_);
  MUSK_OBS_COUNT("flow.decompose.cycles_total", cycles.size());
  MUSK_OBS_HISTOGRAM("flow.decompose.seconds", span.end());
  return cycles;
}

const Graph& SolveContext::component_graph(int c) const {
  MUSK_ASSERT_MSG(shards_ready(), "no current shard pool");
  MUSK_ASSERT(c >= 0 && c < static_cast<int>(slots_.size()));
  return slots_[static_cast<std::size_t>(c)].graph;
}

std::span<const EdgeId> SolveContext::component_edges(int c) const {
  MUSK_ASSERT_MSG(shards_ready(), "no current shard pool");
  MUSK_ASSERT(c >= 0 && c < static_cast<int>(slots_.size()));
  return slots_[static_cast<std::size_t>(c)].edges;
}

const Circulation& SolveContext::component_flow(int c) const {
  MUSK_ASSERT_MSG(shards_ready(), "no current shard pool");
  MUSK_ASSERT(c >= 0 && c < static_cast<int>(slots_.size()));
  const ComponentSlot& slot = slots_[static_cast<std::size_t>(c)];
  MUSK_ASSERT_MSG(slot.clean, "component flow requested before its solve");
  return slot.flow;
}

SolveContext& local_context() {
  thread_local SolveContext context;
  return context;
}

}  // namespace musketeer::flow
