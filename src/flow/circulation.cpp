#include "flow/circulation.hpp"

namespace musketeer::flow {

Circulation zero_circulation(const Graph& g) {
  return Circulation(static_cast<std::size_t>(g.num_edges()), 0);
}

bool conserves_flow(const Graph& g, const Circulation& f) {
  if (f.size() != static_cast<std::size_t>(g.num_edges())) return false;
  std::vector<Amount> net(static_cast<std::size_t>(g.num_nodes()), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    const Amount fe = f[static_cast<std::size_t>(e)];
    net[static_cast<std::size_t>(edge.from)] -= fe;
    net[static_cast<std::size_t>(edge.to)] += fe;
  }
  for (Amount n : net) {
    if (n != 0) return false;
  }
  return true;
}

bool within_capacity(const Graph& g, const Circulation& f) {
  if (f.size() != static_cast<std::size_t>(g.num_edges())) return false;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Amount fe = f[static_cast<std::size_t>(e)];
    if (fe < 0 || fe > g.edge(e).capacity) return false;
  }
  return true;
}

bool is_feasible(const Graph& g, const Circulation& f) {
  return within_capacity(g, f) && conserves_flow(g, f);
}

__int128 scaled_welfare(const Graph& g, const Circulation& f) {
  MUSK_ASSERT(f.size() == static_cast<std::size_t>(g.num_edges()));
  __int128 total = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    total += static_cast<__int128>(g.scaled_gain(e)) *
             static_cast<__int128>(f[static_cast<std::size_t>(e)]);
  }
  return total;
}

double welfare(const Graph& g, const Circulation& f) {
  return static_cast<double>(scaled_welfare(g, f)) / kGainScale;
}

Amount total_volume(const Circulation& f) {
  Amount total = 0;
  for (Amount fe : f) total += fe;
  return total;
}

Circulation add(const Circulation& a, const Circulation& b) {
  MUSK_ASSERT(a.size() == b.size());
  Circulation out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

}  // namespace musketeer::flow
