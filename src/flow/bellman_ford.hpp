// Negative-cycle detection on residual networks (Bellman–Ford).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "flow/residual.hpp"
#include "flow/workspace.hpp"

namespace musketeer::flow {

/// Finds a strictly negative-cost cycle among `arcs` (only arcs with
/// positive residual participate; build_residual already guarantees that).
/// Returns the arc indices of one such cycle, in traversal order, or
/// nullopt if none exists. Costs are exact integers, so "strictly
/// negative" has no epsilon.
std::optional<std::vector<int>> find_negative_cycle(
    NodeId num_nodes, std::span<const ResidualArc> arcs);

/// Scratch-reusing variant (bit-identical result): distance/predecessor
/// tables live in `scratch` and are reused across calls.
std::optional<std::vector<int>> find_negative_cycle(
    NodeId num_nodes, std::span<const ResidualArc> arcs,
    BellmanFordScratch& scratch);

/// Extracts *several* vertex-disjoint negative cycles from one
/// Bellman–Ford run (one per distinct cycle in the final predecessor
/// forest). Each Bellman–Ford pass costs O(nm); harvesting every cycle it
/// found amortizes that cost across many cancellations. Returns an empty
/// vector iff no negative cycle exists.
std::vector<std::vector<int>> find_negative_cycles(
    NodeId num_nodes, std::span<const ResidualArc> arcs);

/// Scratch-reusing variant (bit-identical result).
std::vector<std::vector<int>> find_negative_cycles(
    NodeId num_nodes, std::span<const ResidualArc> arcs,
    BellmanFordScratch& scratch);

}  // namespace musketeer::flow
