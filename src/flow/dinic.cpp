#include "flow/dinic.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace musketeer::flow {

Dinic::Dinic(NodeId num_nodes) : adj_(static_cast<std::size_t>(num_nodes)) {
  MUSK_ASSERT(num_nodes >= 0);
}

int Dinic::add_edge(NodeId from, NodeId to, Amount capacity) {
  MUSK_ASSERT(from >= 0 && from < num_nodes());
  MUSK_ASSERT(to >= 0 && to < num_nodes());
  MUSK_ASSERT(capacity >= 0);
  auto& fwd_list = adj_[static_cast<std::size_t>(from)];
  auto& rev_list = adj_[static_cast<std::size_t>(to)];
  const int fwd_idx = static_cast<int>(fwd_list.size());
  // A self-loop would invalidate the paired-index arithmetic below; the
  // library never creates one (channels connect distinct users).
  MUSK_ASSERT(from != to);
  const int rev_idx = static_cast<int>(rev_list.size());
  fwd_list.push_back(Arc{to, capacity, rev_idx});
  rev_list.push_back(Arc{from, 0, fwd_idx});
  handles_.emplace_back(from, fwd_idx);
  original_capacity_.push_back(capacity);
  return static_cast<int>(handles_.size()) - 1;
}

bool Dinic::bfs(NodeId source, NodeId sink) {
  level_.assign(adj_.size(), -1);
  std::queue<NodeId> queue;
  level_[static_cast<std::size_t>(source)] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop();
    for (const Arc& arc : adj_[static_cast<std::size_t>(v)]) {
      if (arc.capacity > 0 && level_[static_cast<std::size_t>(arc.to)] < 0) {
        level_[static_cast<std::size_t>(arc.to)] =
            level_[static_cast<std::size_t>(v)] + 1;
        queue.push(arc.to);
      }
    }
  }
  return level_[static_cast<std::size_t>(sink)] >= 0;
}

Amount Dinic::dfs(NodeId v, NodeId sink, Amount limit) {
  if (v == sink) return limit;
  for (auto& it = iter_[static_cast<std::size_t>(v)];
       it < adj_[static_cast<std::size_t>(v)].size(); ++it) {
    Arc& arc = adj_[static_cast<std::size_t>(v)][it];
    if (arc.capacity <= 0 ||
        level_[static_cast<std::size_t>(arc.to)] !=
            level_[static_cast<std::size_t>(v)] + 1) {
      continue;
    }
    const Amount pushed = dfs(arc.to, sink, std::min(limit, arc.capacity));
    if (pushed > 0) {
      arc.capacity -= pushed;
      adj_[static_cast<std::size_t>(arc.to)][static_cast<std::size_t>(arc.rev)]
          .capacity += pushed;
      return pushed;
    }
  }
  return 0;
}

Amount Dinic::solve(NodeId source, NodeId sink,
                    util::CancelToken* cancel) {
  MUSK_ASSERT(source != sink);
  Amount total = 0;
  while (bfs(source, sink)) {
    MUSK_CANCEL_POINT(cancel);
    iter_.assign(adj_.size(), 0);
    for (;;) {
      const Amount pushed =
          dfs(source, sink, std::numeric_limits<Amount>::max());
      if (pushed == 0) break;
      total += pushed;
      MUSK_CANCEL_POINT(cancel);
    }
  }
#if defined(MUSKETEER_AUDIT)
  // Audit hook: re-derive per-edge flows from the residual capacities and
  // verify capacity bounds, conservation at interior nodes, and that the
  // net divergence at source/sink equals the reported flow value.
  {
    std::vector<Amount> net(adj_.size(), 0);
    for (std::size_t h = 0; h < handles_.size(); ++h) {
      const Amount flow = flow_on(static_cast<int>(h));
      MUSK_ASSERT_MSG(
          flow >= 0 && flow <= original_capacity_[h],
          "audit: dinic pushed flow outside an edge's capacity bounds");
      const auto [from, idx] = handles_[h];
      const NodeId to = adj_[static_cast<std::size_t>(from)]
                            [static_cast<std::size_t>(idx)].to;
      net[static_cast<std::size_t>(from)] -= flow;
      net[static_cast<std::size_t>(to)] += flow;
    }
    for (NodeId v = 0; v < num_nodes(); ++v) {
      const Amount expected =
          v == source ? -total : (v == sink ? total : 0);
      MUSK_ASSERT_MSG(net[static_cast<std::size_t>(v)] == expected,
                      "audit: dinic flow is not conserved");
    }
  }
#endif
  return total;
}

Amount Dinic::flow_on(int edge_handle) const {
  MUSK_ASSERT(edge_handle >= 0 &&
              edge_handle < static_cast<int>(handles_.size()));
  const auto [from, idx] = handles_[static_cast<std::size_t>(edge_handle)];
  const Arc& arc =
      adj_[static_cast<std::size_t>(from)][static_cast<std::size_t>(idx)];
  return original_capacity_[static_cast<std::size_t>(edge_handle)] -
         arc.capacity;
}

}  // namespace musketeer::flow
