// Network simplex for the welfare-maximizing circulation.
//
// The production algorithm for min-cost flows: maintain a spanning-tree
// basis (real arcs plus big-M artificial arcs to a virtual root), pivot
// negative-reduced-cost arcs into the tree along the unique tree cycle,
// and stop when no arc prices in. Each pivot costs O(n + m) here (the
// tree and potentials are rebuilt per pivot — the "lazy" variant), versus
// O(n·m) per cancellation for the Bellman–Ford canceller, which makes it
// the fast path at Lightning-like scales.
//
// Exactness: costs are the same scaled integers as the rest of the flow
// stack, so the result is exactly optimal; the solver asserts the
// no-negative-residual-cycle certificate in tests. Anti-cycling: Dantzig
// pivoting switches to Bland's rule after a threshold, and a hard pivot
// cap falls back to the proven Bellman–Ford solver (correctness is never
// at the mercy of degenerate pivoting). Fallbacks are counted in
// SolveStats::fallbacks so callers can see when the cap fired.
#pragma once

#include "flow/circulation.hpp"
#include "flow/graph.hpp"
#include "flow/solver.hpp"
#include "flow/workspace.hpp"

namespace musketeer::flow {

/// Solves max sum(gain_e * f_e) over feasible circulations via network
/// simplex. Stats (when given) count pivots as cycles_cancelled.
Circulation solve_network_simplex(const Graph& g, SolveStats* stats = nullptr);

/// Scratch-reusing variant (bit-identical result): the basis, tree and
/// potential buffers live in `ws` and are reused across solves. The full
/// Workspace is taken (not just SimplexScratch) so the pivot-cap fallback
/// path can reuse the Bellman–Ford scratch too. `cancel` is checked once
/// per pivot (and forwarded into the fallback canceller).
Circulation solve_network_simplex(const Graph& g, Workspace& ws,
                                  SolveStats* stats = nullptr,
                                  util::CancelToken* cancel = nullptr);

}  // namespace musketeer::flow
