// Circulation algebra: feasibility, conservation, welfare.
//
// A circulation assigns a non-negative flow to every edge such that the
// net flow through each vertex is zero (the paper's balance-conservation
// property). Circulations are the space of possible rebalancings.
#pragma once

#include <span>
#include <vector>

#include "flow/graph.hpp"

namespace musketeer::flow {

/// Flow value per edge, indexed by EdgeId. Size must equal num_edges().
using Circulation = std::vector<Amount>;

/// All-zero circulation for `g`.
Circulation zero_circulation(const Graph& g);

/// True iff flow is conserved at every vertex: sum(out) == sum(in).
bool conserves_flow(const Graph& g, const Circulation& f);

/// True iff 0 <= f(e) <= c(e) for every edge.
bool within_capacity(const Graph& g, const Circulation& f);

/// Feasible == non-negative, capacity-respecting, conserving.
bool is_feasible(const Graph& g, const Circulation& f);

/// Social welfare of `f` under the graph's gains, exactly, in scaled units
/// (multiply by 1/kGainScale for coins).
__int128 scaled_welfare(const Graph& g, const Circulation& f);

/// Social welfare in coins (double; exact up to the final conversion).
double welfare(const Graph& g, const Circulation& f);

/// Total flow volume: sum of f(e) over all edges.
Amount total_volume(const Circulation& f);

/// Pointwise sum: result(e) = a(e) + b(e). Sizes must match.
Circulation add(const Circulation& a, const Circulation& b);

}  // namespace musketeer::flow
