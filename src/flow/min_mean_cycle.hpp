// Karp's minimum mean cycle algorithm.
//
// Two roles in this library:
//  1. Exact optimality certificate: a circulation is welfare-optimal iff
//     the minimum mean cycle cost of its residual network is >= 0. Tests
//     and property checkers use this to certify solver output without an
//     external LP.
//  2. The min-mean-cycle-cancelling solver (Goldberg–Tarjan) uses it to
//     pick which cycle to cancel, giving a strongly polynomial bound.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "flow/residual.hpp"
#include "flow/workspace.hpp"

namespace musketeer::flow {

/// Exact rational mean value num/den (den > 0).
struct MeanValue {
  std::int64_t num = 0;
  std::int64_t den = 1;

  bool is_negative() const { return num < 0; }
};

struct MinMeanCycle {
  MeanValue mean;
  /// Arc indices of a cycle achieving mean cost <= `mean` (in traversal
  /// order). Guaranteed to have strictly negative total cost when
  /// mean.is_negative().
  std::vector<int> arcs;
};

/// Computes the minimum cycle mean over `arcs` via Karp's algorithm and
/// extracts a witness cycle. Returns nullopt if the arc set is acyclic.
std::optional<MinMeanCycle> min_mean_cycle(NodeId num_nodes,
                                           std::span<const ResidualArc> arcs);

/// Scratch-reusing variant (bit-identical result): the Karp DP table and
/// witness-extraction buffers live in `scratch` and are reused across
/// calls.
std::optional<MinMeanCycle> min_mean_cycle(NodeId num_nodes,
                                           std::span<const ResidualArc> arcs,
                                           MinMeanScratch& scratch);

}  // namespace musketeer::flow
