#include "flow/partitioner.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace musketeer::flow {

EdgeId Partition::largest_component_edges() const {
  EdgeId largest = 0;
  for (int c = 0; c < num_components(); ++c) {
    largest = std::max(largest, static_cast<EdgeId>(edges(c).size()));
  }
  return largest;
}

NodeId Partitioner::find_root(NodeId v) {
  // Path halving: every probe points a node at its grandparent, so the
  // forest flattens as it is queried without a second pass.
  while (parent_[static_cast<std::size_t>(v)] != v) {
    const NodeId grandparent =
        parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(v)])];
    parent_[static_cast<std::size_t>(v)] = grandparent;
    v = grandparent;
  }
  return v;
}

const Partition& Partitioner::run(const Graph& g) {
  MUSK_OBS_SPAN(span, "flow.partition");
  const NodeId n = g.num_nodes();
  const EdgeId m = g.num_edges();

  parent_.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) parent_[static_cast<std::size_t>(v)] = v;
  for (EdgeId e = 0; e < m; ++e) {
    // Union over every edge, capacity-0 included: the partition must
    // reflect the arc layout the solvers see, not the currently-pushable
    // subgraph (DESIGN.md §13).
    const Edge& edge = g.edge(e);
    const NodeId a = find_root(edge.from);
    const NodeId b = find_root(edge.to);
    if (a != b) parent_[static_cast<std::size_t>(b)] = a;
  }

  // Number components by smallest member node: scanning nodes in id
  // order and assigning ids on first sight of each root gives exactly
  // that, independent of union order.
  Partition& p = partition_;
  p.component_of_.assign(static_cast<std::size_t>(n), kNoComponent);
  std::vector<int>& root_component = root_component_;  // reused scratch
  root_component.assign(static_cast<std::size_t>(n), kNoComponent);
  int num_components = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (g.out_edges(v).empty() && g.in_edges(v).empty()) continue;
    const NodeId root = find_root(v);
    int& c = root_component[static_cast<std::size_t>(root)];
    if (c == kNoComponent) c = num_components++;
    p.component_of_[static_cast<std::size_t>(v)] = c;
  }

  // CSR edge lists: count, prefix-sum, fill. Filling in global edge
  // order keeps every per-component list ascending.
  p.first_edge_.assign(static_cast<std::size_t>(num_components) + 1, 0);
  for (EdgeId e = 0; e < m; ++e) {
    const int c = p.component_of_[static_cast<std::size_t>(g.edge(e).from)];
    MUSK_ASSERT(c != kNoComponent);
    ++p.first_edge_[static_cast<std::size_t>(c) + 1];
  }
  for (std::size_t c = 1; c < p.first_edge_.size(); ++c) {
    p.first_edge_[c] += p.first_edge_[c - 1];
  }
  p.edges_.resize(static_cast<std::size_t>(m));
  std::vector<std::size_t> cursor(p.first_edge_.begin(),
                                  p.first_edge_.end() - 1);
  for (EdgeId e = 0; e < m; ++e) {
    const int c = p.component_of_[static_cast<std::size_t>(g.edge(e).from)];
    p.edges_[cursor[static_cast<std::size_t>(c)]++] = e;
  }

  MUSK_OBS_HISTOGRAM("flow.partition.components",
                     static_cast<double>(num_components));
  MUSK_OBS_HISTOGRAM("flow.partition.largest_component_edges",
                     static_cast<double>(p.largest_component_edges()));
  MUSK_OBS_HISTOGRAM("flow.partition.seconds", span.end());
  return partition_;
}

}  // namespace musketeer::flow
