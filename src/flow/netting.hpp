// Opposing-flow netting.
//
// A circulation may route flow through both directions of the same
// payment channel (antiparallel edges). Executing both directions wastes
// liquidity and breaks channel-level sign consistency — the two
// directions cancel coin-for-coin inside the channel. Netting reduces
// each antiparallel pair by the smaller of the two flows, preserving
// conservation (both endpoints lose equal in/out flow).
//
// Note: netting can only change welfare by removing a (pos, neg) gain
// pair whose sum the optimum kept; on a welfare-*optimal* circulation
// with rational bids, netting never decreases welfare (the cancelled
// two-cycle had gain >= 0 only if the pair's gains summed positive, which
// cycle-cancelling already exploited — so optimal circulations are
// already netted unless a zero-sum pair exists).
#pragma once

#include <utility>
#include <vector>

#include "flow/circulation.hpp"
#include "flow/graph.hpp"

namespace musketeer::flow {

/// An antiparallel edge pair (e from u->v, r from v->u) of one channel.
using EdgePair = std::pair<EdgeId, EdgeId>;

/// Finds all antiparallel edge pairs in `g` (each unordered pair listed
/// once; with parallel edges, pairs are matched greedily by id).
std::vector<EdgePair> antiparallel_pairs(const Graph& g);

/// Cancels opposing flows on every antiparallel pair in place. Returns
/// the total amount netted (per direction). The result is a feasible
/// circulation whenever the input was.
Amount net_opposing_flows(const Graph& g, const std::vector<EdgePair>& pairs,
                          Circulation& f);

/// True iff no antiparallel pair carries flow in both directions
/// (channel-level sign consistency of the circulation).
bool is_channel_sign_consistent(const Graph& g,
                                const std::vector<EdgePair>& pairs,
                                const Circulation& f);

}  // namespace musketeer::flow
