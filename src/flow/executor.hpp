// The flow layer's task-execution seam.
//
// SolveContext's sharded solve path and the mechanisms above it fan
// independent per-component work out through this interface instead of
// spawning threads themselves (musk_lint's raw-thread rule enforces
// that). The only production implementation is svc::ParallelExecutor —
// a fixed, rank-locked worker pool — but the seam lives here so flow/
// core/sim can be shard-aware without depending on the service layer.
//
// Semantics of run(count, fn):
//   * fn(i) is invoked exactly once for every i in [0, count), on the
//     calling thread and/or worker threads, in unspecified order;
//   * run() returns only after every invocation has finished (a
//     barrier), so callers may merge results immediately — merging in
//     index order is what keeps sharded solves deterministic;
//   * tasks must be disjoint: fn(i) may not touch state fn(j) touches.
//     The executor provides the barrier's synchronizes-with edges, so
//     disjoint tasks need no locks of their own;
//   * concurrency() == 1 means fn runs inline on the caller —
//     SolveContext treats that as "legacy path" and skips sharding.
#pragma once

#include <cstddef>
#include <functional>

#include "util/deadline.hpp"

namespace musketeer::flow {

class Executor {
 public:
  virtual ~Executor() = default;

  /// Maximum tasks that may run at once (>= 1). A return of 1 promises
  /// strictly inline, sequential execution.
  virtual int concurrency() const = 0;

  /// Runs fn(0..count-1) to completion (see the header comment for the
  /// full contract). If any task throws, one of the exceptions is
  /// rethrown on the caller after all tasks finished.
  virtual void run(std::size_t count,
                   const std::function<void(std::size_t)>& fn) = 0;

  /// Attaches a cancellation token (borrowed; nullptr detaches). Once
  /// the token fires, an implementation MAY skip tasks that have not
  /// started yet — run() then throws util::SolveCancelled after the
  /// barrier instead of completing the batch. In-flight tasks are never
  /// interrupted by the executor itself; they observe the same token at
  /// their own MUSK_CANCEL_POINTs. The default keeps the legacy
  /// run-everything behavior (inline/serial executors rely on the task
  /// bodies' own cancel points).
  virtual void set_cancel(util::CancelToken* /*token*/) {}
};

/// Inline executor: runs every task sequentially on the caller. Useful
/// as an explicit "threads = 1" stand-in and in tests.
class SerialExecutor final : public Executor {
 public:
  int concurrency() const override { return 1; }

  void run(std::size_t count,
           const std::function<void(std::size_t)>& fn) override {
    for (std::size_t i = 0; i < count; ++i) fn(i);
  }
};

}  // namespace musketeer::flow
