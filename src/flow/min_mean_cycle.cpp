#include "flow/min_mean_cycle.hpp"

#include <algorithm>
#include <limits>

namespace musketeer::flow {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

// Compares rationals a/b < c/d with b, d > 0, exactly.
bool rational_less(std::int64_t a, std::int64_t b, std::int64_t c,
                   std::int64_t d) {
  return static_cast<__int128>(a) * d < static_cast<__int128>(c) * b;
}

// Finds a cycle among arcs whose indices are in `allowed`, via iterative
// DFS with tri-color marking. Returns arc indices in traversal order.
// The adjacency lists and color array are borrowed from `scratch`.
std::vector<int> find_cycle_in_subgraph(NodeId num_nodes,
                                        std::span<const ResidualArc> arcs,
                                        const std::vector<int>& allowed,
                                        MinMeanScratch& scratch) {
  const std::size_t n = static_cast<std::size_t>(num_nodes);
  std::vector<std::vector<int>>& adj = scratch.adj;
  if (adj.size() < n) adj.resize(n);
  for (std::size_t v = 0; v < n; ++v) adj[v].clear();
  for (int a : allowed) {
    adj[static_cast<std::size_t>(arcs[static_cast<std::size_t>(a)].from)]
        .push_back(a);
  }

  // Colors: 0 = white, 1 = gray, 2 = black.
  constexpr unsigned char kWhite = 0, kGray = 1, kBlack = 2;
  std::vector<unsigned char>& color = scratch.color;
  color.assign(n, kWhite);
  // DFS stack entries: (node, next adjacency index to try, arc that led here).
  struct Frame {
    NodeId node;
    std::size_t next = 0;
    int via_arc = -1;
  };

  for (NodeId start = 0; start < num_nodes; ++start) {
    if (color[static_cast<std::size_t>(start)] != kWhite) continue;
    std::vector<Frame> stack;
    stack.push_back(Frame{start, 0, -1});
    color[static_cast<std::size_t>(start)] = kGray;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto& out = adj[static_cast<std::size_t>(frame.node)];
      if (frame.next < out.size()) {
        const int arc_idx = out[frame.next++];
        const NodeId next =
            arcs[static_cast<std::size_t>(arc_idx)].to;
        const unsigned char c = color[static_cast<std::size_t>(next)];
        if (c == kWhite) {
          color[static_cast<std::size_t>(next)] = kGray;
          stack.push_back(Frame{next, 0, arc_idx});
        } else if (c == kGray) {
          // Back edge: the cycle is `next -> ... -> frame.node -> next`.
          std::vector<int> cycle;
          cycle.push_back(arc_idx);
          for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            if (it->node == next) break;
            MUSK_ASSERT(it->via_arc >= 0);
            cycle.push_back(it->via_arc);
          }
          std::reverse(cycle.begin(), cycle.end());
          return cycle;
        }
      } else {
        color[static_cast<std::size_t>(frame.node)] = kBlack;
        stack.pop_back();
      }
    }
  }
  MUSK_ASSERT_MSG(false, "tight subgraph must contain a cycle");
  return {};
}

}  // namespace

std::optional<MinMeanCycle> min_mean_cycle(NodeId num_nodes,
                                           std::span<const ResidualArc> arcs) {
  MinMeanScratch scratch;
  return min_mean_cycle(num_nodes, arcs, scratch);
}

std::optional<MinMeanCycle> min_mean_cycle(NodeId num_nodes,
                                           std::span<const ResidualArc> arcs,
                                           MinMeanScratch& scratch) {
  if (num_nodes == 0 || arcs.empty()) return std::nullopt;
  const std::size_t n = static_cast<std::size_t>(num_nodes);

  // Karp's recurrence: dp[k][v] = min cost of any k-arc walk ending at v,
  // starting anywhere (dp[0][*] = 0 emulates a virtual source). The table
  // is flattened to (n+1) rows of n entries in scratch.dp.
  std::vector<std::int64_t>& dp = scratch.dp;
  dp.assign((n + 1) * n, kInf);
  std::fill(dp.begin(), dp.begin() + static_cast<std::ptrdiff_t>(n), 0);
  for (std::size_t k = 1; k <= n; ++k) {
    const std::size_t prev = (k - 1) * n;
    const std::size_t cur = k * n;
    for (const ResidualArc& arc : arcs) {
      const std::int64_t base = dp[prev + static_cast<std::size_t>(arc.from)];
      if (base >= kInf) continue;
      auto& slot = dp[cur + static_cast<std::size_t>(arc.to)];
      slot = std::min(slot, base + arc.cost);
    }
  }

  // mu* = min_v max_k (dp[n][v] - dp[k][v]) / (n - k).
  const std::size_t last = n * n;
  bool found = false;
  std::int64_t best_num = 0, best_den = 1;
  for (std::size_t v = 0; v < n; ++v) {
    if (dp[last + v] >= kInf) continue;
    bool inner_found = false;
    std::int64_t inner_num = 0, inner_den = 1;
    for (std::size_t k = 0; k < n; ++k) {
      if (dp[k * n + v] >= kInf) continue;
      const std::int64_t num = dp[last + v] - dp[k * n + v];
      const std::int64_t den = static_cast<std::int64_t>(n - k);
      if (!inner_found || rational_less(inner_num, inner_den, num, den)) {
        inner_found = true;
        inner_num = num;
        inner_den = den;
      }
    }
    if (!inner_found) continue;
    if (!found || rational_less(inner_num, inner_den, best_num, best_den)) {
      found = true;
      best_num = inner_num;
      best_den = inner_den;
    }
  }
  if (!found) return std::nullopt;  // acyclic arc set

  // Witness extraction: shift costs by -mu* (multiply through by the
  // denominator to stay integral), after which the minimum cycle mean is
  // exactly zero. Bellman–Ford then converges, and every cycle of the
  // tight-arc subgraph has shifted cost zero, i.e. original mean mu*.
  std::vector<std::int64_t>& shifted = scratch.shifted;
  shifted.resize(arcs.size());
  for (std::size_t a = 0; a < arcs.size(); ++a) {
    shifted[a] = arcs[a].cost * best_den - best_num;
  }
  std::vector<std::int64_t>& dist = scratch.dist;
  dist.assign(n, 0);
  for (std::size_t pass = 0; pass + 1 < n; ++pass) {
    bool changed = false;
    for (std::size_t a = 0; a < arcs.size(); ++a) {
      const std::int64_t cand =
          dist[static_cast<std::size_t>(arcs[a].from)] + shifted[a];
      if (cand < dist[static_cast<std::size_t>(arcs[a].to)]) {
        dist[static_cast<std::size_t>(arcs[a].to)] = cand;
        changed = true;
      }
    }
    if (!changed) break;
  }
  std::vector<int>& tight = scratch.tight;
  tight.clear();
  for (std::size_t a = 0; a < arcs.size(); ++a) {
    if (dist[static_cast<std::size_t>(arcs[a].from)] + shifted[a] ==
        dist[static_cast<std::size_t>(arcs[a].to)]) {
      tight.push_back(static_cast<int>(a));
    }
  }
  std::vector<int> cycle = find_cycle_in_subgraph(num_nodes, arcs, tight, scratch);

  if (best_num < 0) {
    std::int64_t total = 0;
    for (int a : cycle) total += arcs[static_cast<std::size_t>(a)].cost;
    MUSK_ASSERT_MSG(total < 0,
                    "min-mean witness must be strictly negative when mu* < 0");
  }
  return MinMeanCycle{MeanValue{best_num, best_den}, std::move(cycle)};
}

}  // namespace musketeer::flow
