#include "flow/netting.hpp"

#include <algorithm>
#include <map>

#include "util/assert.hpp"

namespace musketeer::flow {

std::vector<EdgePair> antiparallel_pairs(const Graph& g) {
  // Bucket edges by unordered endpoint pair, then match opposite
  // directions greedily by id.
  std::map<std::pair<NodeId, NodeId>, std::pair<std::vector<EdgeId>,
                                                std::vector<EdgeId>>>
      buckets;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    const bool forward = edge.from < edge.to;
    const auto key = forward ? std::make_pair(edge.from, edge.to)
                             : std::make_pair(edge.to, edge.from);
    auto& bucket = buckets[key];
    (forward ? bucket.first : bucket.second).push_back(e);
  }
  std::vector<EdgePair> pairs;
  for (auto& [key, bucket] : buckets) {
    const std::size_t n = std::min(bucket.first.size(), bucket.second.size());
    for (std::size_t i = 0; i < n; ++i) {
      pairs.emplace_back(bucket.first[i], bucket.second[i]);
    }
  }
  return pairs;
}

Amount net_opposing_flows(const Graph& g, const std::vector<EdgePair>& pairs,
                          Circulation& f) {
  MUSK_ASSERT(f.size() == static_cast<std::size_t>(g.num_edges()));
  Amount netted = 0;
  for (const auto& [a, b] : pairs) {
    MUSK_ASSERT(g.edge(a).from == g.edge(b).to &&
                g.edge(a).to == g.edge(b).from);
    const Amount cancel = std::min(f[static_cast<std::size_t>(a)],
                                   f[static_cast<std::size_t>(b)]);
    if (cancel > 0) {
      f[static_cast<std::size_t>(a)] -= cancel;
      f[static_cast<std::size_t>(b)] -= cancel;
      netted += cancel;
    }
  }
  return netted;
}

bool is_channel_sign_consistent(const Graph& g,
                                const std::vector<EdgePair>& pairs,
                                const Circulation& f) {
  MUSK_ASSERT(f.size() == static_cast<std::size_t>(g.num_edges()));
  for (const auto& [a, b] : pairs) {
    if (f[static_cast<std::size_t>(a)] > 0 &&
        f[static_cast<std::size_t>(b)] > 0) {
      return false;
    }
  }
  return true;
}

}  // namespace musketeer::flow
