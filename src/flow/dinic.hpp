// Dinic's maximum-flow algorithm.
//
// Used by the PCN substrate for capacity queries (maximum amount routable
// between two users given current channel balances) and by tests as an
// independent oracle for flow-feasibility questions.
#pragma once

#include <vector>

#include "flow/graph.hpp"
#include "util/deadline.hpp"

namespace musketeer::flow {

/// Standalone max-flow solver over its own arc storage (adding an edge
/// creates the paired reverse arc with zero capacity).
class Dinic {
 public:
  explicit Dinic(NodeId num_nodes);

  /// Adds a directed edge with the given capacity; returns an edge handle
  /// usable with flow_on().
  int add_edge(NodeId from, NodeId to, Amount capacity);

  /// Computes the maximum s-t flow. May be called once per instance.
  /// A non-null `cancel` is checked once per level phase and once per
  /// augmenting path; SolveCancelled leaves the instance unusable
  /// (residual capacities are partially consumed) — discard it.
  Amount solve(NodeId source, NodeId sink,
               util::CancelToken* cancel = nullptr);

  /// Flow routed through the edge returned by add_edge (valid after
  /// solve()).
  Amount flow_on(int edge_handle) const;

  NodeId num_nodes() const { return static_cast<NodeId>(adj_.size()); }

 private:
  struct Arc {
    NodeId to;
    Amount capacity;  // remaining capacity
    int rev;          // index of the paired reverse arc in adj_[to]
  };

  bool bfs(NodeId source, NodeId sink);
  Amount dfs(NodeId v, NodeId sink, Amount limit);

  std::vector<std::vector<Arc>> adj_;
  std::vector<std::pair<NodeId, int>> handles_;  // (from, arc index)
  std::vector<Amount> original_capacity_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

}  // namespace musketeer::flow
