#include "flow/bellman_ford.hpp"

#include <algorithm>

namespace musketeer::flow {

namespace {

// Walks predecessor arcs from `start` exactly `steps` times; returns the
// node reached. Used to land on a node that is certainly inside a cycle of
// the predecessor forest.
NodeId walk_predecessors(NodeId start, int steps,
                         const std::vector<int>& parent_arc,
                         std::span<const ResidualArc> arcs) {
  NodeId v = start;
  for (int i = 0; i < steps; ++i) {
    const int pa = parent_arc[static_cast<std::size_t>(v)];
    MUSK_ASSERT(pa >= 0);
    v = arcs[static_cast<std::size_t>(pa)].from;
  }
  return v;
}

}  // namespace

std::vector<std::vector<int>> find_negative_cycles(
    NodeId num_nodes, std::span<const ResidualArc> arcs) {
  BellmanFordScratch scratch;
  return find_negative_cycles(num_nodes, arcs, scratch);
}

std::vector<std::vector<int>> find_negative_cycles(
    NodeId num_nodes, std::span<const ResidualArc> arcs,
    BellmanFordScratch& scratch) {
  std::vector<std::vector<int>> cycles;
  if (num_nodes == 0 || arcs.empty()) return cycles;
  const std::size_t n = static_cast<std::size_t>(num_nodes);

  std::vector<std::int64_t>& dist = scratch.dist;
  std::vector<int>& parent_arc = scratch.parent_arc;
  std::vector<NodeId>& updated_last_pass = scratch.updated_last_pass;
  dist.assign(n, 0);
  parent_arc.assign(n, -1);
  for (NodeId pass = 0; pass < num_nodes; ++pass) {
    updated_last_pass.clear();
    for (std::size_t a = 0; a < arcs.size(); ++a) {
      const ResidualArc& arc = arcs[a];
      const std::int64_t cand =
          dist[static_cast<std::size_t>(arc.from)] + arc.cost;
      if (cand < dist[static_cast<std::size_t>(arc.to)]) {
        dist[static_cast<std::size_t>(arc.to)] = cand;
        parent_arc[static_cast<std::size_t>(arc.to)] = static_cast<int>(a);
        updated_last_pass.push_back(arc.to);
      }
    }
    if (updated_last_pass.empty()) return cycles;  // converged
  }

  // Every node updated in the n-th pass reaches a negative cycle via the
  // predecessor forest; harvest each distinct cycle once.
  std::vector<unsigned char>& claimed = scratch.claimed;
  claimed.assign(n, 0);
  for (NodeId start : updated_last_pass) {
    const NodeId inside =
        walk_predecessors(start, num_nodes, parent_arc, arcs);
    if (claimed[static_cast<std::size_t>(inside)]) continue;
    std::vector<int> cycle;
    bool fresh = true;
    NodeId v = inside;
    do {
      if (claimed[static_cast<std::size_t>(v)]) {
        fresh = false;  // ran into a previously harvested cycle
        break;
      }
      claimed[static_cast<std::size_t>(v)] = 1;
      const int pa = parent_arc[static_cast<std::size_t>(v)];
      MUSK_ASSERT(pa >= 0);
      cycle.push_back(pa);
      v = arcs[static_cast<std::size_t>(pa)].from;
    } while (v != inside);
    if (!fresh) continue;
    std::reverse(cycle.begin(), cycle.end());
    std::int64_t total = 0;
    for (int a : cycle) total += arcs[static_cast<std::size_t>(a)].cost;
    MUSK_ASSERT_MSG(total < 0, "harvested cycle must have negative cost");
    cycles.push_back(std::move(cycle));
  }
  MUSK_ASSERT(!cycles.empty());
  return cycles;
}

std::optional<std::vector<int>> find_negative_cycle(
    NodeId num_nodes, std::span<const ResidualArc> arcs) {
  BellmanFordScratch scratch;
  return find_negative_cycle(num_nodes, arcs, scratch);
}

std::optional<std::vector<int>> find_negative_cycle(
    NodeId num_nodes, std::span<const ResidualArc> arcs,
    BellmanFordScratch& scratch) {
  if (num_nodes == 0 || arcs.empty()) return std::nullopt;
  const std::size_t n = static_cast<std::size_t>(num_nodes);

  // Distances start at zero everywhere, which is equivalent to a virtual
  // source connected to every node with cost 0 — any negative cycle is
  // then reachable by construction.
  std::vector<std::int64_t>& dist = scratch.dist;
  std::vector<int>& parent_arc = scratch.parent_arc;
  dist.assign(n, 0);
  parent_arc.assign(n, -1);

  NodeId updated = -1;
  for (NodeId pass = 0; pass < num_nodes; ++pass) {
    updated = -1;
    for (std::size_t a = 0; a < arcs.size(); ++a) {
      const ResidualArc& arc = arcs[a];
      MUSK_ASSERT(arc.residual > 0);
      const std::int64_t cand = dist[static_cast<std::size_t>(arc.from)] + arc.cost;
      if (cand < dist[static_cast<std::size_t>(arc.to)]) {
        dist[static_cast<std::size_t>(arc.to)] = cand;
        parent_arc[static_cast<std::size_t>(arc.to)] = static_cast<int>(a);
        updated = arc.to;
      }
    }
    if (updated < 0) return std::nullopt;  // converged: no negative cycle
  }

  // A node updated in the n-th pass is reachable from a negative cycle;
  // walking n predecessor steps lands strictly inside one.
  const NodeId inside = walk_predecessors(updated, num_nodes, parent_arc, arcs);

  std::vector<int> cycle;
  NodeId v = inside;
  do {
    const int pa = parent_arc[static_cast<std::size_t>(v)];
    MUSK_ASSERT(pa >= 0);
    cycle.push_back(pa);
    v = arcs[static_cast<std::size_t>(pa)].from;
  } while (v != inside);
  std::reverse(cycle.begin(), cycle.end());

  // The predecessor walk yields the cycle; verify it is strictly negative
  // (exact integer arithmetic, so this is a hard invariant).
  std::int64_t total = 0;
  for (int a : cycle) total += arcs[static_cast<std::size_t>(a)].cost;
  MUSK_ASSERT_MSG(total < 0, "extracted cycle must have negative cost");
  return cycle;
}

}  // namespace musketeer::flow
