// SolveContext: the zero-rebuild solve path.
//
// A SolveContext owns a flow::Graph plus the pooled solver Workspace and
// lets callers run many solves on one topology without re-allocating
// either. The contract:
//
//   * bind_from(source)   — if the source has the same structure as the
//     currently bound graph (node count and per-edge endpoints), only
//     capacities and gains are refreshed in place ("rebind", O(m), no
//     allocation); otherwise the graph is rebuilt ("structure build").
//   * rebind_gains(gains) — cheapest path: refresh gains only.
//   * mask_player(v)      — zero the capacity of every edge incident to v
//     in O(deg(v)) using the graph's adjacency, saving the old values;
//     unmask() restores them. The masked graph is exactly the paper's
//     G_{-v}, so VCG exclusion re-solves need no graph rebuild at all.
//   * solve(kind, stats)  — solve_max_welfare on the bound graph through
//     the pooled workspace. SolveStats::graph_rebuilds reports how many
//     structure builds this context performed since its previous solve
//     (0 on a warm rebind-only path).
//
// Results are bit-identical to building a fresh Graph and calling the
// legacy solvers: only buffers are reused, never algorithmic state.
//
// Component sharding (set_executor): when an Executor with
// concurrency > 1 is attached, solve() partitions the bound graph into
// weakly-connected components (flow::Partitioner) and solves them as
// independent tasks, merging flows and stats in component-id order.
// The merged result is bit-identical to the monolithic solve for every
// solver kind (DESIGN.md §13 has the per-solver argument); SolveStats
// counters sum across components. Each component keeps its own subgraph
// (global node-id space, component edges in ascending global order),
// workspace, and cached circulation:
//
//   * the shard pool is (re)built only on structure builds and its
//     capacities/gains are refreshed in place on rebinds, so the
//     zero-rebuild contract survives sharding — quiescent epochs still
//     perform no partitioning and no graph construction;
//   * mask_player(v) additionally masks only v's component and marks it
//     dirty, so a masked solve re-solves exactly one component and
//     reuses every other component's cached flow — the O(own-component)
//     VCG reprice. An incremental solve's SolveStats cover only the
//     re-solved components (the cached ones did no work).
//
// With no executor — or one with concurrency() == 1 — every call takes
// the literal legacy whole-graph path ("--threads 1").
//
// Thread ownership: a SolveContext is single-threaded state, like the
// Workspace it embeds; only the component tasks it hands to the
// executor run concurrently, and those touch disjoint slots. One
// context per thread; the thread_local local_context() backs legacy
// entry points. See DESIGN.md §9 and §13.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "flow/decompose.hpp"
#include "flow/executor.hpp"
#include "flow/graph.hpp"
#include "flow/partitioner.hpp"
#include "flow/solver.hpp"
#include "flow/workspace.hpp"
#include "obs/obs.hpp"

namespace musketeer::flow {

/// Lifetime counters of one SolveContext.
struct ContextStats {
  /// Full Graph (re)constructions: binds on a new/changed structure plus
  /// per-component shard-pool (re)builds — one count per graph built, so
  /// the sharded path's rebuild work is summed, not sampled.
  long long structure_builds = 0;
  /// In-place capacity/gain refreshes on an unchanged structure.
  long long rebinds = 0;
  /// Solves run through this context.
  long long solves = 0;
  /// Network-simplex pivot-cap fallbacks observed across those solves.
  long long fallbacks = 0;
  /// Solves a cancel token interrupted (each threw util::SolveCancelled).
  long long cancelled = 0;
};

class SolveContext {
 public:
  SolveContext() = default;
  SolveContext(const SolveContext&) = delete;
  SolveContext& operator=(const SolveContext&) = delete;
  SolveContext(SolveContext&&) = default;
  SolveContext& operator=(SolveContext&&) = default;

  bool bound() const { return bound_; }

  const Graph& graph() const {
    MUSK_ASSERT_MSG(bound_, "SolveContext used before bind");
    return graph_;
  }

  Workspace& workspace() { return ws_; }
  const ContextStats& stats() const { return stats_; }

  /// Attaches the executor the sharded solve path fans component tasks
  /// out through (borrowed; must outlive the context or be detached with
  /// nullptr). nullptr or concurrency() == 1 selects the legacy
  /// whole-graph path.
  void set_executor(Executor* executor) { executor_ = executor; }
  Executor* executor() const { return executor_; }

  /// Attaches the cancellation token (borrowed; nullptr detaches) that
  /// every solve and decompose checks at its iteration boundaries, and
  /// hands it to the attached executor so queued component tasks are
  /// skipped once it fires. Call after set_executor(). A cancelled solve
  /// throws util::SolveCancelled; interrupted component slots stay dirty
  /// and are re-solved on the next call (counted in
  /// SolveStats::rebinds_after_cancel) — the zero-rebuild contract is
  /// only promised for non-cancelled epochs.
  void set_cancel(util::CancelToken* token) {
    cancel_ = token;
    if (executor_ != nullptr) executor_->set_cancel(token);
  }
  util::CancelToken* cancel() const { return cancel_; }

  /// Adopts `g` as the bound graph (always a structure build).
  void bind(Graph&& g) {
    MUSK_ASSERT_MSG(masked_player_ < 0, "bind while a capacity mask is active");
    graph_ = std::move(g);
    bound_ = true;
    ++stats_.structure_builds;
  }

  /// Binds from any edge-list source. Source must provide num_nodes(),
  /// num_edges(), edge_from(e), edge_to(e), capacity(e) and gain(e).
  /// Rebinds in place when the structure (node count + per-edge
  /// endpoints) matches the currently bound graph; rebuilds otherwise.
  /// Returns the bound graph.
  template <typename Source>
  const Graph& bind_from(const Source& src) {
    MUSK_ASSERT_MSG(masked_player_ < 0, "bind while a capacity mask is active");
    const NodeId n = src.num_nodes();
    const EdgeId m = src.num_edges();
    bool match = bound_ && graph_.num_nodes() == n && graph_.num_edges() == m;
    for (EdgeId e = 0; match && e < m; ++e) {
      const Edge& cur = graph_.edge(e);
      match = cur.from == src.edge_from(e) && cur.to == src.edge_to(e);
    }
    if (match) {
      for (EdgeId e = 0; e < m; ++e) {
        graph_.set_capacity(e, src.capacity(e));
        graph_.set_gain(e, src.gain(e));
      }
      ++stats_.rebinds;
      MUSK_OBS_COUNT("flow.graph.rebind_total", 1);
    } else {
      Graph g(n);
      for (EdgeId e = 0; e < m; ++e) {
        g.add_edge(src.edge_from(e), src.edge_to(e), src.capacity(e),
                   src.gain(e));
      }
      graph_ = std::move(g);
      bound_ = true;
      ++stats_.structure_builds;
      MUSK_OBS_COUNT("flow.graph.build_total", 1);
    }
    return graph_;
  }

  /// Refreshes per-edge gains only (capacities and structure untouched).
  void rebind_gains(std::span<const double> gains);

  /// Zeroes the capacity of every edge incident to `v` (the paper's
  /// G_{-v}), saving the previous capacities. O(deg(v)). At most one
  /// mask may be active at a time. With a current shard pool the mask
  /// also lands on v's component slot only, so the next solve re-solves
  /// just that component.
  void mask_player(NodeId v);

  /// Restores the capacities saved by mask_player (and the masked
  /// component's cached flow, so the shard pool is warm again).
  void unmask();

  /// Player currently masked, or -1.
  NodeId masked_player() const { return masked_player_; }

  /// Runs solve_max_welfare on the bound graph through the pooled
  /// workspace — monolithically, or sharded by component when an
  /// executor with concurrency > 1 is attached. Bit-identical to the
  /// legacy entry point either way.
  Circulation solve(SolverKind kind = SolverKind::kBellmanFord,
                    SolveStats* stats = nullptr);

  /// Sign-consistent decomposition of `f` on the bound graph through the
  /// pooled scratch. Always whole-graph: the peel order over global
  /// start nodes is part of the outcome's bit-identity.
  std::vector<CycleFlow> decompose(const Circulation& f);

  // --- Shard pool introspection (valid after a sharded solve) ---------

  /// True when the last solve went through the sharded path and the
  /// shard pool still matches the bound graph (no re-bind since). The
  /// component accessors below require this.
  bool shards_ready() const {
    return sharding_enabled() && shards_current() && !slots_.empty();
  }

  int num_components() const {
    MUSK_ASSERT_MSG(shards_ready(), "no current shard pool");
    return partitioner_.partition().num_components();
  }

  /// Component owning node `v`, or flow::kNoComponent.
  int component_of(NodeId v) const {
    MUSK_ASSERT_MSG(shards_ready(), "no current shard pool");
    return partitioner_.partition().component_of(v);
  }

  /// Component `c`'s subgraph: global node-id space, the component's
  /// edges in ascending global order.
  const Graph& component_graph(int c) const;

  /// Global edge ids of component `c` (ascending); component_graph(c)'s
  /// local edge i is global edge component_edges(c)[i].
  std::span<const EdgeId> component_edges(int c) const;

  /// Component `c`'s cached optimal local circulation from the last
  /// solve (indexed like component_graph(c)'s edges).
  const Circulation& component_flow(int c) const;

  /// Components the last solve partitioned into (1 on the monolithic
  /// path with a non-empty graph, 0 before any solve or on an empty
  /// graph) and the largest component's edge count.
  int last_component_count() const { return last_components_; }
  EdgeId last_largest_component() const { return last_largest_component_; }

 private:
  /// One weakly-connected component's private solve state.
  struct ComponentSlot {
    Graph graph{0};             ///< global node space, component edges
    Workspace ws;
    std::vector<EdgeId> edges;  ///< local -> global edge id (ascending)
    Circulation flow;           ///< cached optimal local circulation
    bool clean = false;         ///< flow matches graph's current caps/gains
  };

  /// True when an attached executor makes sharding worthwhile at all.
  bool sharding_enabled() const {
    return executor_ != nullptr && executor_->concurrency() > 1;
  }

  /// True when the shard pool mirrors the bound graph's structure and
  /// its current capacities/gains.
  bool shards_current() const {
    return shard_builds_mark_ == stats_.structure_builds &&
           shard_sync_mark_ == stats_.structure_builds + stats_.rebinds;
  }

  /// (Re)builds or refreshes the shard pool to mirror the bound graph.
  void ensure_shards();

  Circulation solve_monolith(SolverKind kind, SolveStats* stats);
  Circulation solve_sharded(SolverKind kind, SolveStats* stats);

  Graph graph_{0};
  Workspace ws_;
  ContextStats stats_;
  bool bound_ = false;
  util::CancelToken* cancel_ = nullptr;  ///< borrowed
  /// The previous solve was cancelled: the next one re-runs interrupted
  /// work and reports it as rebinds_after_cancel.
  bool cancel_dirty_ = false;
  NodeId masked_player_ = -1;
  std::vector<std::pair<EdgeId, Amount>> saved_caps_;
  long long builds_at_last_solve_ = 0;

  // --- Shard pool (sharded path only) --------------------------------
  Executor* executor_ = nullptr;  ///< borrowed
  Partitioner partitioner_;
  std::vector<ComponentSlot> slots_;
  /// stats_.structure_builds value the pool's structure mirrors
  /// (post-build, since slot builds themselves count), or -1.
  long long shard_builds_mark_ = -1;
  /// stats_.structure_builds + stats_.rebinds value the pool's
  /// capacities/gains mirror, or -1.
  long long shard_sync_mark_ = -1;
  /// Slot masked alongside the context mask (kNoComponent when the
  /// masked player is isolated), and whether the active mask reached the
  /// pool at all (false when the pool was stale at mask time).
  int masked_slot_ = kNoComponent;
  bool mask_in_slots_ = false;
  std::vector<std::pair<EdgeId, Amount>> slot_saved_caps_;  ///< local ids
  Circulation slot_saved_flow_;
  bool slot_saved_clean_ = false;
  /// Per-solve scratch: dirty slot ids and their solve stats.
  std::vector<int> dirty_slots_;
  std::vector<SolveStats> slot_stats_;
  int last_components_ = 0;
  EdgeId last_largest_component_ = 0;
};

/// The calling thread's shared context. Backs the legacy (context-free)
/// mechanism entry points; never hand it to another thread.
SolveContext& local_context();

}  // namespace musketeer::flow
