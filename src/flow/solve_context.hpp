// SolveContext: the zero-rebuild solve path.
//
// A SolveContext owns a flow::Graph plus the pooled solver Workspace and
// lets callers run many solves on one topology without re-allocating
// either. The contract:
//
//   * bind_from(source)   — if the source has the same structure as the
//     currently bound graph (node count and per-edge endpoints), only
//     capacities and gains are refreshed in place ("rebind", O(m), no
//     allocation); otherwise the graph is rebuilt ("structure build").
//   * rebind_gains(gains) — cheapest path: refresh gains only.
//   * mask_player(v)      — zero the capacity of every edge incident to v
//     in O(deg(v)) using the graph's adjacency, saving the old values;
//     unmask() restores them. The masked graph is exactly the paper's
//     G_{-v}, so VCG exclusion re-solves need no graph rebuild at all.
//   * solve(kind, stats)  — solve_max_welfare on the bound graph through
//     the pooled workspace. SolveStats::graph_rebuilds reports how many
//     structure builds this context performed since its previous solve
//     (0 on a warm rebind-only path).
//
// Results are bit-identical to building a fresh Graph and calling the
// legacy solvers: only buffers are reused, never algorithmic state.
//
// Thread ownership: a SolveContext is single-threaded state, like the
// Workspace it embeds. One context per thread; the thread_local
// local_context() backs legacy entry points, and components that solve
// from multiple threads (e.g. M2's parallel VCG exclusions) create one
// context per worker. See DESIGN.md §9.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "flow/decompose.hpp"
#include "flow/graph.hpp"
#include "flow/solver.hpp"
#include "flow/workspace.hpp"
#include "obs/obs.hpp"

namespace musketeer::flow {

/// Lifetime counters of one SolveContext.
struct ContextStats {
  /// Full Graph (re)constructions (bind on a new/changed structure).
  long long structure_builds = 0;
  /// In-place capacity/gain refreshes on an unchanged structure.
  long long rebinds = 0;
  /// Solves run through this context.
  long long solves = 0;
  /// Network-simplex pivot-cap fallbacks observed across those solves.
  long long fallbacks = 0;
};

class SolveContext {
 public:
  SolveContext() = default;
  SolveContext(const SolveContext&) = delete;
  SolveContext& operator=(const SolveContext&) = delete;
  SolveContext(SolveContext&&) = default;
  SolveContext& operator=(SolveContext&&) = default;

  bool bound() const { return bound_; }

  const Graph& graph() const {
    MUSK_ASSERT_MSG(bound_, "SolveContext used before bind");
    return graph_;
  }

  Workspace& workspace() { return ws_; }
  const ContextStats& stats() const { return stats_; }

  /// Adopts `g` as the bound graph (always a structure build).
  void bind(Graph&& g) {
    MUSK_ASSERT_MSG(masked_player_ < 0, "bind while a capacity mask is active");
    graph_ = std::move(g);
    bound_ = true;
    ++stats_.structure_builds;
  }

  /// Binds from any edge-list source. Source must provide num_nodes(),
  /// num_edges(), edge_from(e), edge_to(e), capacity(e) and gain(e).
  /// Rebinds in place when the structure (node count + per-edge
  /// endpoints) matches the currently bound graph; rebuilds otherwise.
  /// Returns the bound graph.
  template <typename Source>
  const Graph& bind_from(const Source& src) {
    MUSK_ASSERT_MSG(masked_player_ < 0, "bind while a capacity mask is active");
    const NodeId n = src.num_nodes();
    const EdgeId m = src.num_edges();
    bool match = bound_ && graph_.num_nodes() == n && graph_.num_edges() == m;
    for (EdgeId e = 0; match && e < m; ++e) {
      const Edge& cur = graph_.edge(e);
      match = cur.from == src.edge_from(e) && cur.to == src.edge_to(e);
    }
    if (match) {
      for (EdgeId e = 0; e < m; ++e) {
        graph_.set_capacity(e, src.capacity(e));
        graph_.set_gain(e, src.gain(e));
      }
      ++stats_.rebinds;
      MUSK_OBS_COUNT("flow.graph.rebind_total", 1);
    } else {
      Graph g(n);
      for (EdgeId e = 0; e < m; ++e) {
        g.add_edge(src.edge_from(e), src.edge_to(e), src.capacity(e),
                   src.gain(e));
      }
      graph_ = std::move(g);
      bound_ = true;
      ++stats_.structure_builds;
      MUSK_OBS_COUNT("flow.graph.build_total", 1);
    }
    return graph_;
  }

  /// Refreshes per-edge gains only (capacities and structure untouched).
  void rebind_gains(std::span<const double> gains);

  /// Zeroes the capacity of every edge incident to `v` (the paper's
  /// G_{-v}), saving the previous capacities. O(deg(v)). At most one
  /// mask may be active at a time.
  void mask_player(NodeId v);

  /// Restores the capacities saved by mask_player.
  void unmask();

  /// Player currently masked, or -1.
  NodeId masked_player() const { return masked_player_; }

  /// Runs solve_max_welfare on the bound graph through the pooled
  /// workspace. Bit-identical to the legacy entry point.
  Circulation solve(SolverKind kind = SolverKind::kBellmanFord,
                    SolveStats* stats = nullptr);

  /// Sign-consistent decomposition of `f` on the bound graph through the
  /// pooled scratch.
  std::vector<CycleFlow> decompose(const Circulation& f);

 private:
  Graph graph_{0};
  Workspace ws_;
  ContextStats stats_;
  bool bound_ = false;
  NodeId masked_player_ = -1;
  std::vector<std::pair<EdgeId, Amount>> saved_caps_;
  long long builds_at_last_solve_ = 0;
};

/// The calling thread's shared context. Backs the legacy (context-free)
/// mechanism entry points; never hand it to another thread.
SolveContext& local_context();

}  // namespace musketeer::flow
