// Welfare-maximizing circulation solvers.
//
// The Musketeer mechanisms all begin with
//     f := argmax_f SW(b, f)  over feasible circulations f,
// which is the min-cost circulation problem with cost = -bid. Starting
// from the zero circulation (always feasible), both solvers repeatedly
// cancel negative-cost cycles in the residual network until none remain,
// which is exactly the optimality condition.
//
//  * kBellmanFord cancels any negative cycle found (fast in practice;
//    pseudo-polynomial worst case, guaranteed to terminate because costs
//    are exact integers and every cancellation strictly improves welfare).
//  * kMinMean cancels a minimum-mean cycle each round (Goldberg–Tarjan;
//    strongly polynomial).
//
// Both produce *exactly* optimal circulations; tests cross-validate them
// against each other, against the LP simplex encoder, and against the
// min-mean >= 0 optimality certificate.
#pragma once

#include <cstdint>

#include "flow/circulation.hpp"
#include "flow/graph.hpp"

namespace musketeer::flow {

enum class SolverKind {
  kBellmanFord,
  kMinMean,
  /// Capacity scaling: cancels negative cycles among residual arcs with
  /// residual >= Delta, halving Delta down to 1 (where it coincides with
  /// kBellmanFord, so the result is exactly optimal). Large capacities
  /// are moved in big pushes first — the fast path for coin-scale
  /// capacities.
  kCapacityScaling,
  /// Network simplex (see flow/network_simplex.hpp): O(n + m) pivots
  /// instead of O(n*m) cancellations — the fast path at scale.
  kNetworkSimplex,
};

struct SolveStats {
  int cycles_cancelled = 0;
  Amount units_pushed = 0;
};

/// Computes a feasible circulation maximizing sum(gain(e) * f(e)).
Circulation solve_max_welfare(const Graph& g,
                              SolverKind kind = SolverKind::kBellmanFord,
                              SolveStats* stats = nullptr);

/// True iff `f` is a welfare-optimal feasible circulation on `g`
/// (certified by the absence of negative residual cycles — exact).
bool is_optimal(const Graph& g, const Circulation& f);

}  // namespace musketeer::flow
