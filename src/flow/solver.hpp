// Welfare-maximizing circulation solvers.
//
// The Musketeer mechanisms all begin with
//     f := argmax_f SW(b, f)  over feasible circulations f,
// which is the min-cost circulation problem with cost = -bid. Starting
// from the zero circulation (always feasible), both solvers repeatedly
// cancel negative-cost cycles in the residual network until none remain,
// which is exactly the optimality condition.
//
//  * kBellmanFord cancels any negative cycle found (fast in practice;
//    pseudo-polynomial worst case, guaranteed to terminate because costs
//    are exact integers and every cancellation strictly improves welfare).
//  * kMinMean cancels a minimum-mean cycle each round (Goldberg–Tarjan;
//    strongly polynomial).
//
// Both produce *exactly* optimal circulations; tests cross-validate them
// against each other, against the LP simplex encoder, and against the
// min-mean >= 0 optimality certificate.
//
// Every solver has two entry points: the original allocating form and a
// Workspace-taking form that pools all scratch (residual arc lists,
// distance tables, simplex bases) in a caller-owned Workspace. The two
// are bit-identical — the workspace form merely reuses buffers.
#pragma once

#include <cstdint>

#include "flow/circulation.hpp"
#include "flow/graph.hpp"
#include "flow/workspace.hpp"
#include "util/deadline.hpp"

namespace musketeer::flow {

enum class SolverKind {
  kBellmanFord,
  kMinMean,
  /// Capacity scaling: cancels negative cycles among residual arcs with
  /// residual >= Delta, halving Delta down to 1 (where it coincides with
  /// kBellmanFord, so the result is exactly optimal). Large capacities
  /// are moved in big pushes first — the fast path for coin-scale
  /// capacities.
  kCapacityScaling,
  /// Network simplex (see flow/network_simplex.hpp): O(n + m) pivots
  /// instead of O(n*m) cancellations — the fast path at scale.
  kNetworkSimplex,
};

struct SolveStats {
  int cycles_cancelled = 0;
  Amount units_pushed = 0;
  /// Times the network simplex hit its pivot cap and fell back to the
  /// Bellman–Ford canceller (0 for the other solver kinds).
  int fallbacks = 0;
  /// flow::Graph structure (re)builds performed by the SolveContext this
  /// solve ran on since its previous solve (0 when solving through a bare
  /// Graph or a warm rebind-only context). See flow/solve_context.hpp.
  int graph_rebuilds = 0;
  /// Solves (whole-graph or per-component) a cancel token interrupted
  /// before optimality. A cancelled solve throws util::SolveCancelled
  /// after bumping this, so the count is only observable on stats objects
  /// that outlive the throw (e.g. SolveContext::stats()).
  int cancelled = 0;
  /// Component slots a post-cancellation solve had to re-run from scratch
  /// because the previous, cancelled solve left them dirty. Always 0 in
  /// non-cancelled steady state — the zero-rebuild contract's counter.
  int rebinds_after_cancel = 0;
};

/// Computes a feasible circulation maximizing sum(gain(e) * f(e)).
Circulation solve_max_welfare(const Graph& g,
                              SolverKind kind = SolverKind::kBellmanFord,
                              SolveStats* stats = nullptr);

/// Workspace-reusing variant (bit-identical result): all solver scratch
/// lives in `ws` and is reused across calls. After the first solve on a
/// topology, subsequent same-size solves allocate nothing on the solve
/// path beyond the returned circulation itself.
///
/// When `cancel` is non-null, every solver checks it at its iteration
/// boundaries (MUSK_CANCEL_POINT) and throws util::SolveCancelled once
/// it fires — the workspace stays structurally valid (only its scratch
/// contents are stale) and the next call reuses it normally.
Circulation solve_max_welfare(const Graph& g, Workspace& ws,
                              SolverKind kind = SolverKind::kBellmanFord,
                              SolveStats* stats = nullptr,
                              util::CancelToken* cancel = nullptr);

/// True iff `f` is a welfare-optimal feasible circulation on `g`
/// (certified by the absence of negative residual cycles — exact).
bool is_optimal(const Graph& g, const Circulation& f);

}  // namespace musketeer::flow
