// Directed capacitated graph with per-edge gains (bids).
//
// This is the substrate the Musketeer mechanisms optimize over: each
// directed edge is one side of a payment channel offered to the rebalancing
// mechanism, `capacity` is the liquidity the owner pre-locks, and `gain` is
// the owner's bid per unit of flow (positive for buyers, non-positive for
// sellers). Welfare maximization over circulations on this graph is a
// min-cost circulation problem with cost = -gain.
//
// Gains are doubles at the API surface (the paper's bids are real fee
// rates) but are mirrored internally as integers scaled by kGainScale so
// that all solver optimality arguments are exact — no epsilon tuning in the
// cycle-cancelling loop, and a negative-residual-cycle-free certificate is
// an exact proof of optimality.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace musketeer::flow {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;

/// Integer flow unit (think millisatoshi).
using Amount = std::int64_t;

/// Exact integer representation of a per-unit gain: gain * kGainScale,
/// rounded to nearest. One unit = 1e-9 of a coin per coin of flow.
using ScaledGain = std::int64_t;
inline constexpr double kGainScale = 1e9;

/// Convert a real-valued gain (bid) to its exact internal representation.
ScaledGain scale_gain(double gain);

/// A directed edge: `capacity` units may flow from `from` to `to`, each
/// unit generating `gain` welfare for the edge's owner.
struct Edge {
  NodeId from = 0;
  NodeId to = 0;
  Amount capacity = 0;
  double gain = 0.0;
};

/// Immutable-topology directed multigraph (parallel edges and antiparallel
/// edge pairs are allowed; self-loops are not, as a channel connects two
/// distinct users).
class Graph {
 public:
  explicit Graph(NodeId num_nodes);

  /// Adds an edge and returns its id. Capacity must be non-negative.
  EdgeId add_edge(NodeId from, NodeId to, Amount capacity, double gain);

  NodeId num_nodes() const { return num_nodes_; }
  EdgeId num_edges() const { return static_cast<EdgeId>(edges_.size()); }

  const Edge& edge(EdgeId e) const {
    MUSK_ASSERT(e >= 0 && e < num_edges());
    return edges_[static_cast<std::size_t>(e)];
  }

  ScaledGain scaled_gain(EdgeId e) const {
    MUSK_ASSERT(e >= 0 && e < num_edges());
    return scaled_gains_[static_cast<std::size_t>(e)];
  }

  /// Edge ids leaving / entering `v`.
  std::span<const EdgeId> out_edges(NodeId v) const;
  std::span<const EdgeId> in_edges(NodeId v) const;

  /// Replaces the gain of an edge (used by mechanisms that re-solve under
  /// modified bids, e.g. VCG's per-player exclusion).
  void set_gain(EdgeId e, double gain);

  /// Replaces the capacity of an edge without touching the adjacency
  /// structure (SolveContext rebinding and capacity masks). Must be
  /// non-negative.
  void set_capacity(EdgeId e, Amount capacity);

  /// Sum of all edge capacities (an upper bound on any circulation's size).
  Amount total_capacity() const;

 private:
  NodeId num_nodes_;
  std::vector<Edge> edges_;
  std::vector<ScaledGain> scaled_gains_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

}  // namespace musketeer::flow
