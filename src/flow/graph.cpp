#include "flow/graph.hpp"

#include <cmath>

namespace musketeer::flow {

ScaledGain scale_gain(double gain) {
  const double scaled = gain * kGainScale;
  MUSK_ASSERT_MSG(std::abs(scaled) < 9.2e18, "gain out of representable range");
  return static_cast<ScaledGain>(std::llround(scaled));
}

Graph::Graph(NodeId num_nodes)
    : num_nodes_(num_nodes),
      out_(static_cast<std::size_t>(num_nodes)),
      in_(static_cast<std::size_t>(num_nodes)) {
  MUSK_ASSERT(num_nodes >= 0);
}

EdgeId Graph::add_edge(NodeId from, NodeId to, Amount capacity, double gain) {
  MUSK_ASSERT(from >= 0 && from < num_nodes_);
  MUSK_ASSERT(to >= 0 && to < num_nodes_);
  MUSK_ASSERT_MSG(from != to, "self-loop channels are not allowed");
  MUSK_ASSERT(capacity >= 0);
  const EdgeId id = num_edges();
  edges_.push_back(Edge{from, to, capacity, gain});
  scaled_gains_.push_back(scale_gain(gain));
  out_[static_cast<std::size_t>(from)].push_back(id);
  in_[static_cast<std::size_t>(to)].push_back(id);
  return id;
}

std::span<const EdgeId> Graph::out_edges(NodeId v) const {
  MUSK_ASSERT(v >= 0 && v < num_nodes_);
  return out_[static_cast<std::size_t>(v)];
}

std::span<const EdgeId> Graph::in_edges(NodeId v) const {
  MUSK_ASSERT(v >= 0 && v < num_nodes_);
  return in_[static_cast<std::size_t>(v)];
}

void Graph::set_gain(EdgeId e, double gain) {
  MUSK_ASSERT(e >= 0 && e < num_edges());
  edges_[static_cast<std::size_t>(e)].gain = gain;
  scaled_gains_[static_cast<std::size_t>(e)] = scale_gain(gain);
}

void Graph::set_capacity(EdgeId e, Amount capacity) {
  MUSK_ASSERT(e >= 0 && e < num_edges());
  MUSK_ASSERT(capacity >= 0);
  edges_[static_cast<std::size_t>(e)].capacity = capacity;
}

Amount Graph::total_capacity() const {
  Amount total = 0;
  for (const Edge& e : edges_) total += e.capacity;
  return total;
}

}  // namespace musketeer::flow
