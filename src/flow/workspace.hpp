// Reusable solver workspaces.
//
// Every solver in src/flow historically allocated its scratch state
// (residual arc lists, Bellman–Ford distance/predecessor tables, Karp DP
// tables, simplex bases, decomposition cursors) from the heap on every
// call — fine for one-shot experiments, hostile to the epoch service and
// to VCG's n+1 re-solves on an unchanged topology. A Workspace bundles
// all of that scratch into one value that callers keep alive across
// solves: after the first solve on a topology, subsequent solves on
// same-or-smaller instances perform zero heap allocations on the solve
// path.
//
// Ownership rule: a Workspace (like the SolveContext that embeds one) is
// single-threaded state. One workspace per thread; never share across
// concurrent solves. See DESIGN.md §9.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/residual.hpp"

namespace musketeer::flow {

/// Scratch for find_negative_cycle / find_negative_cycles.
struct BellmanFordScratch {
  std::vector<std::int64_t> dist;
  std::vector<int> parent_arc;
  std::vector<NodeId> updated_last_pass;
  std::vector<unsigned char> claimed;
};

/// Scratch for Karp's min-mean-cycle computation.
struct MinMeanScratch {
  /// Flattened (n+1) x n DP table of walk costs.
  std::vector<std::int64_t> dp;
  std::vector<std::int64_t> shifted;
  std::vector<std::int64_t> dist;
  std::vector<int> tight;
  /// Tight-subgraph adjacency for witness extraction (outer vector is
  /// resized to n; inner vectors keep their capacity across calls).
  std::vector<std::vector<int>> adj;
  std::vector<unsigned char> color;
};

/// Scratch for the network simplex basis (arcs, tree, potentials).
struct SimplexScratch {
  struct Arc {
    NodeId from = 0;
    NodeId to = 0;
    Amount capacity = 0;
    std::int64_t cost = 0;  // minimization cost = -scaled gain
  };
  /// One pivot-cycle traversal step.
  struct Step {
    std::size_t arc = 0;
    bool forward = true;  // cycle traverses the arc in its own direction
  };
  std::vector<Arc> arcs;
  std::vector<Amount> flow;
  std::vector<signed char> state;
  std::vector<int> parent_arc;
  std::vector<int> depth;
  std::vector<std::int64_t> pi;
  std::vector<std::vector<std::size_t>> adjacency;
  std::vector<NodeId> bfs_queue;
  std::vector<Step> path;
  std::vector<Step> from_target;
  std::vector<Step> from_source;
};

/// Scratch for the sign-consistent cycle decomposition peel.
struct DecomposeScratch {
  Circulation remaining;
  std::vector<std::size_t> cursor;
  std::vector<int> on_path;
  std::vector<NodeId> path_nodes;
  std::vector<EdgeId> path_edges;
};

/// All solver scratch, pooled. Value-semantic: copying copies capacity
/// hints, moving is cheap, destruction frees everything.
struct Workspace {
  /// Residual network of the current iterate (rebuilt in place).
  std::vector<ResidualArc> arcs;
  /// Delta-filtered arc subset (capacity scaling only).
  std::vector<ResidualArc> wide;
  BellmanFordScratch bf;
  MinMeanScratch mmc;
  SimplexScratch ns;
  DecomposeScratch dec;
};

}  // namespace musketeer::flow
