// Sign-consistent cycle decomposition of a circulation.
//
// Rebalancing is executed cycle by cycle (Hide & Seek's execution model,
// adopted by Musketeer). A sign-consistent decomposition expresses a
// circulation f as a sum of simple cycle flows f_1..f_k such that every
// cycle routes flow through each edge in the same direction as f itself —
// the standard <= |E| cycles result of network flow theory
// (Ahuja–Magnanti–Orlin). We obtain it by repeatedly peeling a cycle from
// the support of the remaining flow and subtracting its bottleneck.
#pragma once

#include <vector>

#include "flow/circulation.hpp"
#include "flow/graph.hpp"
#include "flow/workspace.hpp"
#include "util/deadline.hpp"

namespace musketeer::flow {

/// A simple cycle carrying `amount` units of flow along `edges`
/// (edge ids, in traversal order; consecutive edges share endpoints and
/// the last edge returns to the first edge's tail).
struct CycleFlow {
  std::vector<EdgeId> edges;
  Amount amount = 0;

  /// Number of edges in the cycle (the paper's n_i).
  int length() const { return static_cast<int>(edges.size()); }
};

/// Decomposes a circulation into at most num_edges() sign-consistent
/// simple cycles. Requires is_feasible(g, f).
std::vector<CycleFlow> decompose_sign_consistent(const Graph& g,
                                                 const Circulation& f);

/// Scratch-reusing variant (bit-identical result): the peel's remaining
/// flow, cursors and walk buffers live in `scratch`. A non-null `cancel`
/// is checked once per peeled cycle; on SolveCancelled the partially
/// peeled scratch is stale but structurally reusable.
std::vector<CycleFlow> decompose_sign_consistent(
    const Graph& g, const Circulation& f, DecomposeScratch& scratch,
    util::CancelToken* cancel = nullptr);

/// Reconstitutes the circulation represented by a set of cycle flows.
Circulation recompose(const Graph& g, const std::vector<CycleFlow>& cycles);

/// Welfare of a single cycle flow under the graph's gains, in coins.
double cycle_welfare(const Graph& g, const CycleFlow& cycle);

/// Exact scaled welfare of a single cycle flow.
__int128 scaled_cycle_welfare(const Graph& g, const CycleFlow& cycle);

/// Validates that every cycle is a simple cycle in g and that the cycles
/// sum exactly to f (i.e. a correct sign-consistent decomposition).
bool is_valid_decomposition(const Graph& g, const Circulation& f,
                            const std::vector<CycleFlow>& cycles);

}  // namespace musketeer::flow
