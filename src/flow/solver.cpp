#include "flow/solver.hpp"

#include "flow/bellman_ford.hpp"
#include "flow/network_simplex.hpp"
#include "flow/min_mean_cycle.hpp"
#include "flow/residual.hpp"

namespace musketeer::flow {

namespace {

Circulation solve_bellman_ford(const Graph& g, Workspace& ws,
                               SolveStats* stats,
                               util::CancelToken* cancel) {
  Circulation f = zero_circulation(g);
  for (;;) {
    MUSK_CANCEL_POINT(cancel);
    build_residual(g, f, ws.arcs);
    // Single-cycle cancelling measures faster here than harvesting every
    // disjoint cycle per pass (find_negative_cycles): on PCN-like graphs
    // the predecessor forest rarely holds more than one disjoint cycle,
    // so batching only adds bookkeeping (see bench/e7_solver_ablation).
    const auto cycle = find_negative_cycle(g.num_nodes(), ws.arcs, ws.bf);
    if (!cycle) break;
    const Amount amount = bottleneck(ws.arcs, *cycle);
    push_along(ws.arcs, *cycle, amount, f);
    if (stats != nullptr) {
      ++stats->cycles_cancelled;
      stats->units_pushed += amount;
    }
  }
  return f;
}

Circulation solve_min_mean(const Graph& g, Workspace& ws, SolveStats* stats,
                           util::CancelToken* cancel) {
  Circulation f = zero_circulation(g);
  for (;;) {
    MUSK_CANCEL_POINT(cancel);
    build_residual(g, f, ws.arcs);
    const auto mmc = min_mean_cycle(g.num_nodes(), ws.arcs, ws.mmc);
    if (!mmc || !mmc->mean.is_negative()) break;
    const Amount amount = bottleneck(ws.arcs, mmc->arcs);
    push_along(ws.arcs, mmc->arcs, amount, f);
    if (stats != nullptr) {
      ++stats->cycles_cancelled;
      stats->units_pushed += amount;
    }
  }
  return f;
}

Circulation solve_capacity_scaling(const Graph& g, Workspace& ws,
                                   SolveStats* stats,
                                   util::CancelToken* cancel) {
  Circulation f = zero_circulation(g);
  Amount max_capacity = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    max_capacity = std::max(max_capacity, g.edge(e).capacity);
  }
  Amount delta = 1;
  while (delta * 2 <= max_capacity) delta *= 2;

  for (; delta >= 1; delta /= 2) {
    for (;;) {
      MUSK_CANCEL_POINT(cancel);
      build_residual(g, f, ws.arcs);
      std::vector<ResidualArc>& wide = ws.wide;
      wide.clear();
      wide.reserve(ws.arcs.size());
      for (const ResidualArc& arc : ws.arcs) {
        if (arc.residual >= delta) wide.push_back(arc);
      }
      const auto cycle = find_negative_cycle(g.num_nodes(), wide, ws.bf);
      if (!cycle) break;
      const Amount amount = bottleneck(wide, *cycle);
      MUSK_ASSERT(amount >= delta);
      push_along(wide, *cycle, amount, f);
      if (stats != nullptr) {
        ++stats->cycles_cancelled;
        stats->units_pushed += amount;
      }
    }
  }
  return f;
}

}  // namespace

Circulation solve_max_welfare(const Graph& g, SolverKind kind,
                              SolveStats* stats) {
  // A local workspace keeps the legacy entry point's allocation profile
  // (every call allocates its own scratch), so workspace-reuse benchmarks
  // compare against the true one-shot cost.
  Workspace ws;
  return solve_max_welfare(g, ws, kind, stats);
}

Circulation solve_max_welfare(const Graph& g, Workspace& ws, SolverKind kind,
                              SolveStats* stats, util::CancelToken* cancel) {
  Circulation f;
  try {
    switch (kind) {
      case SolverKind::kBellmanFord:
        f = solve_bellman_ford(g, ws, stats, cancel);
        break;
      case SolverKind::kMinMean:
        f = solve_min_mean(g, ws, stats, cancel);
        break;
      case SolverKind::kCapacityScaling:
        f = solve_capacity_scaling(g, ws, stats, cancel);
        break;
      case SolverKind::kNetworkSimplex:
        f = solve_network_simplex(g, ws, stats, cancel);
        break;
    }
  } catch (const util::SolveCancelled&) {
    // The partial iterate dies with the unwind; callers treat the
    // workspace as stale scratch. Count the interruption where stats
    // outlive the throw (the SolveContext sums these per slot).
    if (stats != nullptr) ++stats->cancelled;
    throw;
  }
  MUSK_ASSERT_MSG(is_feasible(g, f), "solver produced infeasible circulation");
#if defined(MUSKETEER_AUDIT)
  // Audit hook: re-certify optimality via the (exact, integer-cost)
  // negative-residual-cycle test after every solve, whichever backend ran.
  // The certificate runs through the workspace too, so audited warm
  // contexts stay allocation-free.
  build_residual(g, f, ws.arcs);
  MUSK_ASSERT_MSG(
      !find_negative_cycle(g.num_nodes(), ws.arcs, ws.bf).has_value(),
      "audit: solver output failed the negative-residual-cycle "
      "optimality certificate");
#endif
  return f;
}

bool is_optimal(const Graph& g, const Circulation& f) {
  if (!is_feasible(g, f)) return false;
  const std::vector<ResidualArc> arcs = build_residual(g, f);
  return !find_negative_cycle(g.num_nodes(), arcs).has_value();
}

}  // namespace musketeer::flow
