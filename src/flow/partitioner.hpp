// Weakly-connected-component partitioning of a flow graph.
//
// Musketeer's welfare-maximizing circulation factors exactly over the
// weakly-connected components of the bid graph: a circulation conserves
// flow per node, every residual cycle stays inside one component, and
// the solvers in src/flow never move information across components (see
// DESIGN.md §13 for the per-solver argument). The Partitioner computes
// that factorization once per topology so the solve path can run one
// component at a time — or many at once.
//
// Determinism contract (what makes sharded solves bit-identical):
//
//   * Components are equivalence classes of *edges* under "shares an
//     endpoint", computed by union–find over ALL bound edges — including
//     capacity-0 edges. A masked or undepleted edge still occupies its
//     arc slot in the network-simplex basis, so only the full edge set
//     yields a partition every solver kind decomposes over.
//   * Component ids are stable: components are numbered by their
//     smallest member node, so the same topology always partitions the
//     same way regardless of edge insertion history.
//   * Per-component edge lists are ascending in global edge id, so a
//     component subgraph built from one preserves the global relative
//     edge order (the order Bellman–Ford relaxes arcs in and network
//     simplex lays out its basis columns in).
//
// Nodes with no incident edges belong to no component (component_of ==
// kNoComponent): they cannot carry flow, so no solver needs them.
//
// A Partitioner owns reusable scratch; run() allocates only when the
// graph outgrows what previous runs sized (the zero-rebuild solve path
// re-partitions only on topology changes, so steady-state epochs do no
// partition work at all).
#pragma once

#include <span>
#include <vector>

#include "flow/graph.hpp"

namespace musketeer::flow {

inline constexpr int kNoComponent = -1;

/// The result of one partitioning pass. Views into Partitioner-owned
/// storage stay valid until the next run().
class Partition {
 public:
  int num_components() const {
    return static_cast<int>(first_edge_.size()) - 1;
  }

  /// Component owning node `v`, or kNoComponent for an isolated node.
  int component_of(NodeId v) const {
    MUSK_ASSERT(v >= 0 && v < static_cast<NodeId>(component_of_.size()));
    return component_of_[static_cast<std::size_t>(v)];
  }

  /// Global edge ids of component `c`, ascending.
  std::span<const EdgeId> edges(int c) const {
    MUSK_ASSERT(c >= 0 && c < num_components());
    const auto begin = first_edge_[static_cast<std::size_t>(c)];
    const auto end = first_edge_[static_cast<std::size_t>(c) + 1];
    return std::span<const EdgeId>(edges_).subspan(begin, end - begin);
  }

  /// Edge count of the largest component (0 when there are none).
  EdgeId largest_component_edges() const;

 private:
  friend class Partitioner;

  std::vector<int> component_of_;      // per node; kNoComponent if isolated
  std::vector<EdgeId> edges_;          // edge ids grouped by component
  std::vector<std::size_t> first_edge_;  // CSR offsets, size = components+1
};

class Partitioner {
 public:
  /// Partitions `g` into weakly-connected components. The returned
  /// reference (and every span it hands out) is owned by this
  /// Partitioner and is invalidated by the next run().
  const Partition& run(const Graph& g);

  const Partition& partition() const { return partition_; }

 private:
  NodeId find_root(NodeId v);

  Partition partition_;
  std::vector<NodeId> parent_;       // union–find forest
  std::vector<int> root_component_;  // root node -> component id (scratch)
};

}  // namespace musketeer::flow
