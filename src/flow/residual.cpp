#include "flow/residual.hpp"

#include <algorithm>

namespace musketeer::flow {

std::vector<ResidualArc> build_residual(const Graph& g, const Circulation& f) {
  std::vector<ResidualArc> arcs;
  build_residual(g, f, arcs);
  return arcs;
}

void build_residual(const Graph& g, const Circulation& f,
                    std::vector<ResidualArc>& arcs) {
  MUSK_ASSERT(f.size() == static_cast<std::size_t>(g.num_edges()));
  arcs.clear();
  arcs.reserve(2 * static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    const Amount fe = f[static_cast<std::size_t>(e)];
    MUSK_ASSERT(fe >= 0 && fe <= edge.capacity);
    const std::int64_t gain = g.scaled_gain(e);
    if (fe < edge.capacity) {
      arcs.push_back(ResidualArc{edge.from, edge.to, -gain,
                                 edge.capacity - fe, e, /*forward=*/true});
    }
    if (fe > 0) {
      arcs.push_back(
          ResidualArc{edge.to, edge.from, gain, fe, e, /*forward=*/false});
    }
  }
}

void push_along(const std::vector<ResidualArc>& arcs,
                const std::vector<int>& arc_indices, Amount amount,
                Circulation& f) {
  MUSK_ASSERT(amount > 0);
  for (int idx : arc_indices) {
    const ResidualArc& arc = arcs[static_cast<std::size_t>(idx)];
    MUSK_ASSERT(arc.residual >= amount);
    auto& fe = f[static_cast<std::size_t>(arc.edge)];
    fe += arc.forward ? amount : -amount;
    MUSK_ASSERT(fe >= 0);
  }
}

Amount bottleneck(const std::vector<ResidualArc>& arcs,
                  const std::vector<int>& arc_indices) {
  MUSK_ASSERT(!arc_indices.empty());
  Amount bn = arcs[static_cast<std::size_t>(arc_indices.front())].residual;
  for (int idx : arc_indices) {
    bn = std::min(bn, arcs[static_cast<std::size_t>(idx)].residual);
  }
  return bn;
}

}  // namespace musketeer::flow
