#include "pcn/payment.hpp"

#include "pcn/htlc.hpp"

namespace musketeer::pcn {

bool execute_route(Network& network, const Route& route) {
  // Two-phase HTLC execution: lock every hop (all-or-nothing), then
  // settle the whole chain.
  auto chain = HtlcChain::lock(network, route.hops);
  if (!chain) return false;
  chain->settle();
  return true;
}

MppResult send_payment_mpp(Network& network, NodeId sender, NodeId receiver,
                           Amount amount, int max_parts, int max_hops) {
  MUSK_ASSERT(amount > 0);
  MUSK_ASSERT(max_parts >= 1);
  MppResult result;
  RoutingOptions options;
  options.max_hops = max_hops;

  // Pending part chains; destroyed unsettled = aborted (atomicity).
  std::vector<HtlcChain> parts;
  Amount remaining = amount;
  Amount fees = 0;
  while (remaining > 0 && static_cast<int>(parts.size()) <
                              max_parts) {
    // Largest deliverable amount for this part, by binary search. The
    // locks held by earlier parts already reduce spendable balances, so
    // parts never double-spend liquidity.
    Amount lo = 1, hi = remaining, best = 0;
    std::optional<Route> best_route;
    while (lo <= hi) {
      const Amount mid = lo + (hi - lo) / 2;
      auto route = find_route(network, sender, receiver, mid, options);
      if (route) {
        best = mid;
        best_route = std::move(route);
        lo = mid + 1;
      } else {
        hi = mid - 1;
      }
    }
    if (best == 0) break;  // nothing routable: the split fails
    auto chain = HtlcChain::lock(network, best_route->hops);
    MUSK_ASSERT_MSG(chain.has_value(),
                    "fresh route must be lockable");
    parts.push_back(std::move(*chain));
    fees += best_route->total_fees;
    remaining -= best;
  }

  if (remaining > 0) {
    // Could not cover the amount: abort every held part (RAII would do
    // it too; be explicit).
    for (HtlcChain& part : parts) part.abort();
    return result;
  }
  for (HtlcChain& part : parts) part.settle();
  result.success = true;
  result.parts = static_cast<int>(parts.size());
  result.fees = fees;
  return result;
}

PaymentResult send_payment(Network& network, NodeId sender, NodeId receiver,
                           Amount amount, int max_attempts, int max_hops) {
  PaymentResult result;
  RoutingOptions options;
  options.max_hops = max_hops;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    ++result.attempts;
    const auto route = find_route(network, sender, receiver, amount, options);
    if (!route) return result;
    if (execute_route(network, *route)) {
      result.success = true;
      result.hops = route->length();
      result.fees = route->total_fees;
      return result;
    }
    // Blacklist the first under-funded hop and retry.
    for (const Hop& hop : route->hops) {
      if (network.channel(hop.channel).spendable(hop.from) < hop.amount) {
        options.blacklist.push_back(hop.channel);
        break;
      }
    }
  }
  return result;
}

}  // namespace musketeer::pcn
