// On-chain top-up cost model (the paper's motivating comparison).
//
// The alternative to off-chain rebalancing is an on-chain transaction
// that closes/tops up the channel. Its cost is dominated by a fixed
// blockchain fee (independent of the amount moved) plus the opportunity
// cost of the confirmation delay; rebalancing instead costs a per-unit
// routing fee "orders of magnitude smaller" (§2.1). This module makes
// that comparison quantitative: given a deficit, which repair is cheaper,
// and where is the break-even?
#pragma once

#include "flow/graph.hpp"

namespace musketeer::pcn {

struct OnChainCostModel {
  /// Fixed fee per on-chain transaction, in coins (e.g. ~2000 msat-units
  /// at moderate feerates; the bench sweeps this).
  flow::Amount base_fee = 2000;
  /// Opportunity cost of the confirmation wait, per coin moved (the
  /// capital is unusable for ~1 block time).
  double delay_cost_rate = 0.0005;
};

/// Cost of repairing a `deficit`-sized imbalance on-chain.
double onchain_cost(const OnChainCostModel& model, flow::Amount deficit);

/// Cost of repairing it via rebalancing at `fee_rate` per unit.
double rebalancing_cost(double fee_rate, flow::Amount deficit);

/// The deficit above which the on-chain repair becomes cheaper than
/// rebalancing at `fee_rate` (on-chain cost is mostly fixed, rebalancing
/// scales linearly). Returns a large sentinel if rebalancing always wins.
flow::Amount breakeven_deficit(const OnChainCostModel& model,
                               double fee_rate);

}  // namespace musketeer::pcn
