#include "pcn/rebalancer.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace musketeer::pcn {

namespace {

// Clamps a bid into the open valid range of the game model.
double clamp_bid(double bid) {
  return std::clamp(bid, 0.0, core::kMaxFeeRate - 1e-9);
}

}  // namespace

ExtractedGame extract_game(const Network& network,
                           const RebalancePolicy& policy) {
  MUSK_ASSERT(policy.depleted_threshold > 0.0 &&
              policy.depleted_threshold < policy.target_share);
  MUSK_ASSERT(policy.target_share <= 0.5);
  MUSK_ASSERT(policy.seller_floor_share >= 0.0 &&
              policy.seller_floor_share < policy.target_share);
  MUSK_ASSERT(policy.seller_fee >= 0.0 &&
              policy.seller_fee < core::kMaxFeeRate);

  ExtractedGame extracted{core::Game(network.num_nodes()), {}};
  for (ChannelId c = 0; c < network.num_channels(); ++c) {
    const Channel& channel = network.channel(c);
    const flow::Amount cap = channel.capacity();
    if (cap == 0 || channel.disabled) continue;
    for (int dir = 0; dir < 2; ++dir) {
      const NodeId u = dir == 0 ? channel.a : channel.b;  // coins leave u
      const NodeId v = channel.other(u);
      const double share_v = channel.balance_share(v);
      const auto target = static_cast<flow::Amount>(
          policy.target_share * static_cast<double>(cap));
      if (share_v < policy.depleted_threshold) {
        // v wants inbound rebalancing: depleted edge u -> v.
        const flow::Amount deficit = target - channel.balance_of(v);
        const flow::Amount amount =
            std::min(std::max<flow::Amount>(deficit, 0),
                     channel.spendable(u));
        if (amount <= 0) continue;
        const double bid = clamp_bid(
            policy.buyer_bid_base +
            policy.buyer_bid_slope * (policy.target_share - share_v));
        extracted.game.add_edge(u, v, amount, 0.0, bid);
        extracted.bindings.push_back(EdgeBinding{c, u});
      } else {
        // u may offer liquidity above its floor as a seller on edge
        // u -> v.
        const double share_u = channel.balance_share(u);
        if (share_u <= policy.seller_floor_share) continue;
        const flow::Amount surplus =
            std::min(channel.balance_of(u) -
                         static_cast<flow::Amount>(
                             policy.seller_floor_share *
                             static_cast<double>(cap)),
                     channel.spendable(u));
        const auto offered = static_cast<flow::Amount>(
            policy.seller_liquidity_fraction *
            static_cast<double>(std::max<flow::Amount>(surplus, 0)));
        if (offered <= 0) continue;
        extracted.game.add_edge(u, v, offered, -policy.seller_fee, 0.0);
        extracted.bindings.push_back(EdgeBinding{c, u});
      }
    }
  }
  MUSK_ASSERT(extracted.bindings.size() ==
              static_cast<std::size_t>(extracted.game.num_edges()));
  return extracted;
}

ExtractedGame extract_and_lock(Network& network,
                               const RebalancePolicy& policy) {
  ExtractedGame extracted = extract_game(network, policy);
  for (flow::EdgeId e = 0; e < extracted.game.num_edges(); ++e) {
    const EdgeBinding& binding =
        extracted.bindings[static_cast<std::size_t>(e)];
    // Capacities were computed from spendable balances, so the lock
    // always succeeds.
    network.channel(binding.channel)
        .lock(binding.from, extracted.game.edge(e).capacity);
  }
  extracted.prelocked = true;
  return extracted;
}

void release_locks(Network& network, ExtractedGame& extracted) {
  if (!extracted.prelocked) return;
  for (flow::EdgeId e = 0; e < extracted.game.num_edges(); ++e) {
    const EdgeBinding& binding =
        extracted.bindings[static_cast<std::size_t>(e)];
    network.channel(binding.channel)
        .unlock(binding.from, extracted.game.edge(e).capacity);
  }
  extracted.prelocked = false;
}

RebalanceStats apply_outcome(Network& network, const ExtractedGame& extracted,
                             const core::Outcome& outcome) {
  RebalanceStats stats;
  for (const core::PricedCycle& pc : outcome.cycles) {
    // Atomic cycle execution: validate all hops, then apply. Pre-locked
    // capacity settles directly from the HTLC locks.
    for (flow::EdgeId e : pc.cycle.edges) {
      const EdgeBinding& binding =
          extracted.bindings[static_cast<std::size_t>(e)];
      const Channel& channel = network.channel(binding.channel);
      const Amount available = extracted.prelocked
                                   ? channel.locked_of(binding.from)
                                   : channel.spendable(binding.from);
      MUSK_ASSERT_MSG(available >= pc.cycle.amount,
                      "pre-locked capacity must cover every cycle");
    }
    for (flow::EdgeId e : pc.cycle.edges) {
      const EdgeBinding& binding =
          extracted.bindings[static_cast<std::size_t>(e)];
      Channel& channel = network.channel(binding.channel);
      if (extracted.prelocked) {
        channel.settle(binding.from, pc.cycle.amount);
      } else {
        channel.transfer(binding.from, pc.cycle.amount);
      }
    }
    ++stats.cycles_executed;
    stats.volume +=
        pc.cycle.amount * static_cast<flow::Amount>(pc.cycle.length());
    for (const core::PlayerPrice& p : pc.prices) {
      if (p.price > 0.0) stats.fees_paid += p.price;
    }
    stats.max_release_time = std::max(stats.max_release_time,
                                      pc.release_time);
  }
  // Release whatever pre-locked capacity the mechanism did not use.
  if (extracted.prelocked) {
    for (flow::EdgeId e = 0; e < extracted.game.num_edges(); ++e) {
      const EdgeBinding& binding =
          extracted.bindings[static_cast<std::size_t>(e)];
      const Amount leftover =
          extracted.game.edge(e).capacity -
          outcome.circulation[static_cast<std::size_t>(e)];
      MUSK_ASSERT(leftover >= 0);
      if (leftover > 0) {
        network.channel(binding.channel).unlock(binding.from, leftover);
      }
    }
  }
  return stats;
}

}  // namespace musketeer::pcn
