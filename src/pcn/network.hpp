// The payment channel network: channels plus adjacency and balance
// conservation bookkeeping.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pcn/channel.hpp"

namespace musketeer::pcn {

class Network {
 public:
  explicit Network(NodeId num_nodes);

  /// Opens a channel; returns its id.
  ChannelId add_channel(NodeId a, NodeId b, Amount balance_a, Amount balance_b,
                        double fee_rate_a = 0.0, double fee_rate_b = 0.0);

  NodeId num_nodes() const { return num_nodes_; }
  ChannelId num_channels() const {
    return static_cast<ChannelId>(channels_.size());
  }

  const Channel& channel(ChannelId c) const;
  Channel& channel(ChannelId c);

  /// Channel ids incident to `v`.
  std::span<const ChannelId> channels_of(NodeId v) const;

  /// Total coins held by `v` across all its channels.
  Amount node_wealth(NodeId v) const;

  /// Sum of all channel capacities (invariant under transfers).
  Amount total_capacity() const;

  /// Fraction of channel directions whose sender side holds less than
  /// `threshold` of the capacity (a depletion measure).
  double depleted_direction_fraction(double threshold) const;

  /// Per-channel imbalance |share_a - 0.5| * 2 in [0, 1], one per channel
  /// (0 = perfectly balanced).
  std::vector<double> imbalances() const;

  /// Order-sensitive FNV-1a digest of the full channel state (endpoints,
  /// balances, locks, disabled flags). Two networks that evolved through
  /// the same operations have the same digest, so a service client can
  /// check settled-state equivalence against a local replay from one u64
  /// instead of a channel-by-channel dump.
  std::uint64_t state_digest() const;

 private:
  NodeId num_nodes_;
  std::vector<Channel> channels_;
  std::vector<std::vector<ChannelId>> adjacency_;
};

}  // namespace musketeer::pcn
