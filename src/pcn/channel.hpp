// Payment channel state.
//
// A channel is a 2-of-2 joint account: the two parties' balances always
// sum to the funding capacity, and an off-chain transfer just moves coins
// from one side to the other (the paper's abacus picture). Each side also
// publishes the fee rate it charges for *forwarding* other users'
// payments out of its side.
#pragma once

#include <cstdint>

#include "flow/graph.hpp"
#include "util/assert.hpp"

namespace musketeer::pcn {

using flow::Amount;
using flow::NodeId;
using ChannelId = std::int32_t;

struct Channel {
  NodeId a = 0;
  NodeId b = 0;
  Amount balance_a = 0;
  Amount balance_b = 0;
  /// Forwarding fee rate charged by each party for payments leaving its
  /// side of the channel.
  double fee_rate_a = 0.0;
  double fee_rate_b = 0.0;
  /// Coins locked under pending HTLCs per side; locked coins stay part of
  /// the balance but cannot be spent until the HTLC settles or fails.
  Amount locked_a = 0;
  Amount locked_b = 0;
  /// Offline channels (node churn, jamming) cannot route, be locked, or
  /// participate in rebalancing until they come back.
  bool disabled = false;

  Amount capacity() const { return balance_a + balance_b; }

  bool has_party(NodeId v) const { return v == a || v == b; }

  NodeId other(NodeId v) const {
    MUSK_ASSERT(has_party(v));
    return v == a ? b : a;
  }

  Amount balance_of(NodeId v) const {
    MUSK_ASSERT(has_party(v));
    return v == a ? balance_a : balance_b;
  }

  double fee_rate_of(NodeId v) const {
    MUSK_ASSERT(has_party(v));
    return v == a ? fee_rate_a : fee_rate_b;
  }

  Amount locked_of(NodeId v) const {
    MUSK_ASSERT(has_party(v));
    return v == a ? locked_a : locked_b;
  }

  /// Coins `v` can spend or lock right now: balance minus pending locks.
  Amount spendable(NodeId v) const { return balance_of(v) - locked_of(v); }

  /// Moves `amount` *spendable* coins from `from`'s side to the
  /// counterparty's side.
  void transfer(NodeId from, Amount amount) {
    MUSK_ASSERT(has_party(from));
    MUSK_ASSERT(amount >= 0);
    MUSK_ASSERT_MSG(spendable(from) >= amount,
                    "channel balance insufficient");
    Amount& src = (from == a) ? balance_a : balance_b;
    Amount& dst = (from == a) ? balance_b : balance_a;
    src -= amount;
    dst += amount;
  }

  /// Reserves `amount` of `from`'s spendable coins under an HTLC.
  void lock(NodeId from, Amount amount) {
    MUSK_ASSERT(amount >= 0);
    MUSK_ASSERT_MSG(spendable(from) >= amount,
                    "cannot lock more than the spendable balance");
    ((from == a) ? locked_a : locked_b) += amount;
  }

  /// Releases `amount` previously locked by `from` (HTLC failure/expiry).
  void unlock(NodeId from, Amount amount) {
    MUSK_ASSERT(amount >= 0);
    Amount& locked = (from == a) ? locked_a : locked_b;
    MUSK_ASSERT_MSG(locked >= amount, "unlocking more than is locked");
    locked -= amount;
  }

  /// Settles `amount` of `from`'s locked coins: the lock is consumed and
  /// the coins move to the counterparty.
  void settle(NodeId from, Amount amount) {
    unlock(from, amount);
    transfer(from, amount);
  }

  /// Fraction of the capacity held by `v`'s side (0.5 = balanced).
  double balance_share(NodeId v) const {
    const Amount cap = capacity();
    if (cap == 0) return 0.5;
    return static_cast<double>(balance_of(v)) / static_cast<double>(cap);
  }
};

}  // namespace musketeer::pcn
