// Fee-aware source routing (the sender-pays-fees model of Lightning).
//
// Routes are found by a backward Dijkstra from the receiver: at each hop
// the amount that must arrive grows by the forwarder's fee, and a channel
// direction is usable only if the forwarding side holds the required
// amount. The returned route therefore carries per-hop amounts that make
// the delivery exact.
#pragma once

#include <optional>
#include <vector>

#include "pcn/network.hpp"

namespace musketeer::pcn {

struct Hop {
  ChannelId channel = 0;
  /// The party sending through this channel (pays out of its side).
  NodeId from = 0;
  /// Coins entering the channel at this hop (delivery amount plus all
  /// downstream fees).
  Amount amount = 0;
};

struct Route {
  /// Hops in order from sender to receiver.
  std::vector<Hop> hops;
  /// Total fees the sender pays on top of the delivered amount.
  Amount total_fees = 0;

  int length() const { return static_cast<int>(hops.size()); }
};

struct RoutingOptions {
  int max_hops = 8;
  /// Channels listed here are skipped (used for retry-after-failure).
  std::vector<ChannelId> blacklist;
};

/// Finds the cheapest feasible route delivering `amount` to `receiver`,
/// or nullopt if none exists within the hop bound.
std::optional<Route> find_route(const Network& network, NodeId sender,
                                NodeId receiver, Amount amount,
                                const RoutingOptions& options = {});

}  // namespace musketeer::pcn
