#include "pcn/network.hpp"

#include <cmath>

namespace musketeer::pcn {

Network::Network(NodeId num_nodes)
    : num_nodes_(num_nodes),
      adjacency_(static_cast<std::size_t>(num_nodes)) {
  MUSK_ASSERT(num_nodes >= 0);
}

ChannelId Network::add_channel(NodeId a, NodeId b, Amount balance_a,
                               Amount balance_b, double fee_rate_a,
                               double fee_rate_b) {
  MUSK_ASSERT(a >= 0 && a < num_nodes_);
  MUSK_ASSERT(b >= 0 && b < num_nodes_);
  MUSK_ASSERT(a != b);
  MUSK_ASSERT(balance_a >= 0 && balance_b >= 0);
  MUSK_ASSERT(fee_rate_a >= 0.0 && fee_rate_b >= 0.0);
  const ChannelId id = num_channels();
  channels_.push_back(Channel{a, b, balance_a, balance_b, fee_rate_a,
                              fee_rate_b});
  adjacency_[static_cast<std::size_t>(a)].push_back(id);
  adjacency_[static_cast<std::size_t>(b)].push_back(id);
  return id;
}

const Channel& Network::channel(ChannelId c) const {
  MUSK_ASSERT(c >= 0 && c < num_channels());
  return channels_[static_cast<std::size_t>(c)];
}

Channel& Network::channel(ChannelId c) {
  MUSK_ASSERT(c >= 0 && c < num_channels());
  return channels_[static_cast<std::size_t>(c)];
}

std::span<const ChannelId> Network::channels_of(NodeId v) const {
  MUSK_ASSERT(v >= 0 && v < num_nodes_);
  return adjacency_[static_cast<std::size_t>(v)];
}

Amount Network::node_wealth(NodeId v) const {
  Amount wealth = 0;
  for (ChannelId c : channels_of(v)) wealth += channel(c).balance_of(v);
  return wealth;
}

Amount Network::total_capacity() const {
  Amount total = 0;
  for (const Channel& c : channels_) total += c.capacity();
  return total;
}

double Network::depleted_direction_fraction(double threshold) const {
  if (channels_.empty()) return 0.0;
  int depleted = 0;
  for (const Channel& c : channels_) {
    depleted += (c.balance_share(c.a) < threshold);
    depleted += (c.balance_share(c.b) < threshold);
  }
  return static_cast<double>(depleted) /
         (2.0 * static_cast<double>(channels_.size()));
}

std::uint64_t Network::state_digest() const {
  // FNV-1a over the little-endian bytes of every state field, in channel
  // order. Fee rates are static configuration, not evolving state, so
  // they stay out of the digest.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(num_nodes_));
  mix(static_cast<std::uint64_t>(channels_.size()));
  for (const Channel& c : channels_) {
    mix(static_cast<std::uint64_t>(c.a));
    mix(static_cast<std::uint64_t>(c.b));
    mix(static_cast<std::uint64_t>(c.balance_a));
    mix(static_cast<std::uint64_t>(c.balance_b));
    mix(static_cast<std::uint64_t>(c.locked_a));
    mix(static_cast<std::uint64_t>(c.locked_b));
    mix(c.disabled ? 1u : 0u);
  }
  return h;
}

std::vector<double> Network::imbalances() const {
  std::vector<double> out;
  out.reserve(channels_.size());
  for (const Channel& c : channels_) {
    out.push_back(std::abs(c.balance_share(c.a) - 0.5) * 2.0);
  }
  return out;
}

}  // namespace musketeer::pcn
