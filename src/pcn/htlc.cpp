#include "pcn/htlc.hpp"

#include "util/assert.hpp"

namespace musketeer::pcn {

std::optional<HtlcChain> HtlcChain::lock(Network& network,
                                         const std::vector<Hop>& hops) {
  std::vector<Hop> acquired;
  acquired.reserve(hops.size());
  for (const Hop& hop : hops) {
    Channel& channel = network.channel(hop.channel);
    if (channel.disabled || channel.spendable(hop.from) < hop.amount) {
      // Roll back everything acquired so far.
      for (const Hop& held : acquired) {
        network.channel(held.channel).unlock(held.from, held.amount);
      }
      return std::nullopt;
    }
    channel.lock(hop.from, hop.amount);
    acquired.push_back(hop);
  }
  return HtlcChain(network, std::move(acquired));
}

void HtlcChain::settle() {
  MUSK_ASSERT_MSG(pending_, "HTLC chain already consumed");
  for (const Hop& hop : hops_) {
    network_->channel(hop.channel).settle(hop.from, hop.amount);
  }
  pending_ = false;
}

void HtlcChain::abort() {
  MUSK_ASSERT_MSG(pending_, "HTLC chain already consumed");
  for (const Hop& hop : hops_) {
    network_->channel(hop.channel).unlock(hop.from, hop.amount);
  }
  pending_ = false;
}

HtlcChain::~HtlcChain() {
  if (pending_) abort();
}

HtlcChain::HtlcChain(HtlcChain&& other) noexcept
    : network_(other.network_),
      hops_(std::move(other.hops_)),
      pending_(other.pending_) {
  other.pending_ = false;
}

HtlcChain& HtlcChain::operator=(HtlcChain&& other) noexcept {
  if (this != &other) {
    if (pending_) abort();
    network_ = other.network_;
    hops_ = std::move(other.hops_);
    pending_ = other.pending_;
    other.pending_ = false;
  }
  return *this;
}

}  // namespace musketeer::pcn
