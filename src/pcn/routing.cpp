#include "pcn/routing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace musketeer::pcn {

namespace {

constexpr Amount kInf = std::numeric_limits<Amount>::max() / 4;

Amount forwarding_fee(double rate, Amount amount) {
  return static_cast<Amount>(std::ceil(rate * static_cast<double>(amount)));
}

}  // namespace

std::optional<Route> find_route(const Network& network, NodeId sender,
                                NodeId receiver, Amount amount,
                                const RoutingOptions& options) {
  MUSK_ASSERT(sender != receiver);
  MUSK_ASSERT(amount > 0);
  MUSK_ASSERT(options.max_hops >= 1);
  const auto n = static_cast<std::size_t>(network.num_nodes());
  const auto h_max = static_cast<std::size_t>(options.max_hops);

  auto blacklisted = [&](ChannelId c) {
    return std::find(options.blacklist.begin(), options.blacklist.end(), c) !=
           options.blacklist.end();
  };

  // need[h][v]: minimum coins that must *arrive at* v so that v (charging
  // its own forwarding fee unless v is the sender) can deliver `amount`
  // to the receiver within h more hops.
  std::vector<std::vector<Amount>> need(h_max + 1,
                                        std::vector<Amount>(n, kInf));
  struct Parent {
    ChannelId channel = -1;
    NodeId next = -1;
  };
  std::vector<std::vector<Parent>> parent(h_max + 1,
                                          std::vector<Parent>(n));
  need[0][static_cast<std::size_t>(receiver)] = amount;

  for (std::size_t h = 1; h <= h_max; ++h) {
    need[h] = need[h - 1];
    parent[h] = parent[h - 1];
    for (ChannelId c = 0; c < network.num_channels(); ++c) {
      if (blacklisted(c)) continue;
      const Channel& channel = network.channel(c);
      if (channel.disabled) continue;
      for (int dir = 0; dir < 2; ++dir) {
        const NodeId u = dir == 0 ? channel.a : channel.b;
        const NodeId v = channel.other(u);
        const Amount need_v = need[h - 1][static_cast<std::size_t>(v)];
        if (need_v >= kInf || u == receiver) continue;
        if (channel.spendable(u) < need_v) continue;  // u cannot fund it
        const Amount fee =
            (u == sender) ? 0 : forwarding_fee(channel.fee_rate_of(u), need_v);
        const Amount cand = need_v + fee;
        if (cand < need[h][static_cast<std::size_t>(u)]) {
          need[h][static_cast<std::size_t>(u)] = cand;
          parent[h][static_cast<std::size_t>(u)] = Parent{c, v};
        }
      }
    }
  }

  if (need[h_max][static_cast<std::size_t>(sender)] >= kInf) {
    return std::nullopt;
  }

  // Extract the channel path by walking parent pointers from the sender
  // down the hop levels.
  std::vector<ChannelId> path;
  std::vector<NodeId> nodes{sender};
  {
    NodeId node = sender;
    std::size_t lvl = h_max;
    while (node != receiver) {
      MUSK_ASSERT(lvl > 0);
      const Parent p = parent[lvl][static_cast<std::size_t>(node)];
      MUSK_ASSERT(p.channel >= 0);
      path.push_back(p.channel);
      node = p.next;
      nodes.push_back(node);
      --lvl;
    }
  }

  // Recompute hop amounts backward from the receiver so the route is
  // internally consistent: each forwarder pockets exactly its fee.
  Route route;
  route.hops.resize(path.size());
  Amount arriving = amount;  // coins the next node must receive
  for (std::size_t i = path.size(); i-- > 0;) {
    const NodeId from = nodes[i];
    route.hops[i] = Hop{path[i], from, arriving};
    if (from != sender) {
      arriving += forwarding_fee(
          network.channel(path[i]).fee_rate_of(from), arriving);
    }
  }
  route.total_fees = arriving - amount;

  // Re-verify feasibility against current balances (the DP may have mixed
  // hop levels after monotone copies; reject inconsistent routes).
  for (const Hop& hop : route.hops) {
    const Channel& channel = network.channel(hop.channel);
    if (channel.disabled || channel.spendable(hop.from) < hop.amount) {
      return std::nullopt;
    }
  }
  MUSK_ASSERT(route.total_fees >= 0);
  return route;
}

}  // namespace musketeer::pcn
