// The bridge between the PCN simulator and the Musketeer mechanisms.
//
// extract_game() scans channel states and builds the rebalancing game of
// §2.2: for every channel direction (coins moving from u's side to v's
// side),
//   * if v's side is depleted (share below the policy threshold), the
//     direction becomes a depleted edge — v is the buyer, with a bid that
//     grows with the severity of the imbalance; the counterparty's seller
//     stake is 0 (the paper's preclusion rule);
//   * else if u holds surplus above its target, u offers part of it as an
//     indifferent edge — u is the seller at its policy fee.
// Capacities are the coins each party pre-locks (§2.2's pre-lock rule:
// capacities never exceed current balances, so every mechanism outcome is
// executable).
//
// apply_outcome() executes each priced cycle atomically on the network
// (channel transfers along the cycle) and reports aggregate statistics.
// Fees are settled off-band and reported in the stats: inside a channel,
// coins cannot leave the pair, so fee settlement in a deployment happens
// by adjusting the per-hop amounts; the simulator keeps the rebalancing
// amounts exact and accounts fees separately.
#pragma once

#include <vector>

#include "core/game.hpp"
#include "core/outcome.hpp"
#include "pcn/network.hpp"

namespace musketeer::pcn {

struct RebalancePolicy {
  /// A channel side with balance share below this is depleted.
  double depleted_threshold = 0.25;
  /// Rebalancing aims to restore each side to this share.
  double target_share = 0.5;
  /// Buyer bid per unit: base + slope * (target_share - current share).
  double buyer_bid_base = 0.005;
  double buyer_bid_slope = 0.05;
  /// Sellers charge this per unit routed (tail valuation = -seller_fee).
  double seller_fee = 0.001;
  /// A seller keeps at least this share of the channel for itself; only
  /// the balance above the floor is sellable. Must be below target_share
  /// — a balanced channel is exactly the one that can afford to route,
  /// and pricing its liquidity is the point of including sellers.
  double seller_floor_share = 0.3;
  /// Fraction of the above-floor surplus a seller offers per round.
  double seller_liquidity_fraction = 0.5;
};

/// One game edge's backing channel direction.
struct EdgeBinding {
  ChannelId channel = 0;
  NodeId from = 0;  // coins move out of this party's side
};

struct ExtractedGame {
  core::Game game;
  /// Binding per game edge (indexed by EdgeId).
  std::vector<EdgeBinding> bindings;
  /// True when every edge's capacity is held under an HTLC lock on the
  /// network (§2.2's pre-lock rule). apply_outcome then settles cycle
  /// flows from the locks and releases the remainder.
  bool prelocked = false;
};

ExtractedGame extract_game(const Network& network,
                           const RebalancePolicy& policy);

/// extract_game + §2.2's pre-lock: every offered capacity is locked
/// before the mechanism runs, so participants cannot renege once the
/// cycles are revealed. The returned game's capacities are backed by
/// HTLC locks; pass the result to apply_outcome (which always settles or
/// releases every lock), or to release_locks to abort.
ExtractedGame extract_and_lock(Network& network,
                               const RebalancePolicy& policy);

/// Releases every pre-locked capacity without rebalancing (mechanism
/// aborted). No-op for non-prelocked extractions.
void release_locks(Network& network, ExtractedGame& extracted);

struct RebalanceStats {
  int cycles_executed = 0;
  /// Total coins moved across all cycle edges.
  flow::Amount volume = 0;
  /// Sum of positive prices (total fees paid by buyers), in coins.
  double fees_paid = 0.0;
  /// Latest release time among executed cycles (M4's delay cost).
  double max_release_time = 0.0;
};

/// Executes the outcome's cycles on the network. Every cycle is applied
/// atomically; pre-locked capacities guarantee feasibility.
RebalanceStats apply_outcome(Network& network, const ExtractedGame& extracted,
                             const core::Outcome& outcome);

}  // namespace musketeer::pcn
