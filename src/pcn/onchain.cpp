#include "pcn/onchain.hpp"

#include <limits>

#include "util/assert.hpp"

namespace musketeer::pcn {

double onchain_cost(const OnChainCostModel& model, flow::Amount deficit) {
  MUSK_ASSERT(deficit >= 0);
  return static_cast<double>(model.base_fee) +
         model.delay_cost_rate * static_cast<double>(deficit);
}

double rebalancing_cost(double fee_rate, flow::Amount deficit) {
  MUSK_ASSERT(deficit >= 0);
  MUSK_ASSERT(fee_rate >= 0.0);
  return fee_rate * static_cast<double>(deficit);
}

flow::Amount breakeven_deficit(const OnChainCostModel& model,
                               double fee_rate) {
  // fee_rate * d  >=  base + delay_rate * d
  //  <=>  d >= base / (fee_rate - delay_rate), if fee_rate > delay_rate.
  if (fee_rate <= model.delay_cost_rate) {
    return std::numeric_limits<flow::Amount>::max();
  }
  return static_cast<flow::Amount>(
      static_cast<double>(model.base_fee) /
      (fee_rate - model.delay_cost_rate));
}

}  // namespace musketeer::pcn
