// Atomic multi-hop payment execution.
//
// Real PCNs make multi-hop payments atomic with HTLCs: every hop either
// settles or the whole payment fails. The simulator mirrors the
// observable effect: all hop transfers are validated against current
// balances and then applied together, or nothing changes.
#pragma once

#include "pcn/routing.hpp"

namespace musketeer::pcn {

struct PaymentResult {
  bool success = false;
  /// Hops of the route that was executed (0 if failed / no route).
  int hops = 0;
  /// Fees paid by the sender on success.
  Amount fees = 0;
  /// Number of routing attempts consumed.
  int attempts = 0;
};

/// Validates and applies a route atomically. Returns false (and leaves
/// the network untouched) if any hop lacks balance.
bool execute_route(Network& network, const Route& route);

/// Routes and executes a payment, retrying with the failing channel
/// blacklisted up to `max_attempts` times.
PaymentResult send_payment(Network& network, NodeId sender, NodeId receiver,
                           Amount amount, int max_attempts = 3,
                           int max_hops = 8);

struct MppResult {
  bool success = false;
  /// Parts the payment was split into (1 = single path sufficed).
  int parts = 0;
  /// Total fees across all parts.
  Amount fees = 0;
};

/// Multi-part payment: splits `amount` across up to `max_parts` routes,
/// each part as large as currently routable (binary search over the
/// deliverable amount). All parts are held as pending HTLC chains and
/// settled together only when the full amount is covered — a partial
/// split never leaks (atomicity across parts, as in Lightning's MPP).
MppResult send_payment_mpp(Network& network, NodeId sender, NodeId receiver,
                           Amount amount, int max_parts = 4,
                           int max_hops = 8);

}  // namespace musketeer::pcn
