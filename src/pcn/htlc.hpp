// HTLC chains: the two-phase (lock, then settle-or-abort) primitive that
// makes multi-hop payments and rebalancing cycles atomic.
//
// Real PCNs chain hash-time-locked contracts: every hop locks its
// outgoing coins against the same payment hash, and either the preimage
// settles all of them or the timeout releases all of them. The simulator
// keeps the observable semantics: `lock` reserves every hop (all-or-
// nothing), after which exactly one of `settle` (apply all transfers) or
// `abort` (release all locks) consumes the chain. A chain destroyed
// without settling aborts automatically — locked liquidity is never
// leaked.
#pragma once

#include <optional>
#include <vector>

#include "pcn/routing.hpp"

namespace musketeer::pcn {

class HtlcChain {
 public:
  /// Attempts to lock every hop in order. If some hop lacks spendable
  /// balance, all previously acquired locks are released and nullopt is
  /// returned (the network is untouched).
  static std::optional<HtlcChain> lock(Network& network,
                                       const std::vector<Hop>& hops);

  /// Settles every hop: locked coins move forward. Consumes the chain.
  void settle();

  /// Releases every lock without transferring. Consumes the chain.
  void abort();

  /// True until settle() or abort() has been called.
  bool pending() const { return pending_; }

  std::size_t num_hops() const { return hops_.size(); }

  ~HtlcChain();
  HtlcChain(HtlcChain&& other) noexcept;
  HtlcChain& operator=(HtlcChain&& other) noexcept;
  HtlcChain(const HtlcChain&) = delete;
  HtlcChain& operator=(const HtlcChain&) = delete;

 private:
  HtlcChain(Network& network, std::vector<Hop> hops)
      : network_(&network), hops_(std::move(hops)), pending_(true) {}

  Network* network_;
  std::vector<Hop> hops_;
  bool pending_ = false;
};

}  // namespace musketeer::pcn
