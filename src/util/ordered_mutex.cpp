#include "util/ordered_mutex.hpp"

#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <vector>

namespace musketeer::util {
namespace lock_rank {

bool compiled_in() {
#if defined(MUSKETEER_LOCK_RANK)
  return true;
#else
  return false;
#endif
}

#if defined(MUSKETEER_LOCK_RANK)

namespace {

struct HeldLock {
  const OrderedMutex* mutex = nullptr;
  std::source_location site;
};

struct ThreadState {
  std::vector<HeldLock> held;
  int peak = 0;
};

ThreadState& thread_state() {
  thread_local ThreadState state;
  return state;
}

[[noreturn]] void inversion(const OrderedMutex& acquiring,
                            std::source_location site,
                            const HeldLock& held) {
  std::fprintf(
      stderr,
      "musketeer lock-rank violation: acquiring \"%s\" (rank %d) while "
      "holding \"%s\" (rank %d)\n"
      "  acquisition at %s:%u\n"
      "  conflicting hold from %s:%u\n"
      "  lock ranks must strictly decrease within a thread "
      "(DESIGN.md section 11)\n",
      acquiring.name(), static_cast<int>(acquiring.rank()),
      held.mutex->name(), static_cast<int>(held.mutex->rank()),
      site.file_name(), site.line(), held.site.file_name(),
      held.site.line());
  std::abort();
}

}  // namespace

void check_acquire(const OrderedMutex& mutex, std::source_location site) {
  ThreadState& state = thread_state();
  for (const HeldLock& held : state.held) {
    // Equal rank counts as an inversion: peers that nest need distinct
    // ranks, or two threads nesting them in opposite orders deadlock.
    if (static_cast<int>(mutex.rank()) >=
        static_cast<int>(held.mutex->rank())) {
      inversion(mutex, site, held);
    }
  }
  state.held.push_back(HeldLock{&mutex, site});
  if (static_cast<int>(state.held.size()) > state.peak) {
    state.peak = static_cast<int>(state.held.size());
  }
}

void on_release(const OrderedMutex& mutex) {
  std::vector<HeldLock>& held = thread_state().held;
  // Releases are almost always LIFO; scan from the top so the common
  // case is O(1). Releasing a lock this thread does not hold means the
  // wrapper was bypassed — abort rather than corrupt the stack.
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->mutex == &mutex) {
      held.erase(std::next(it).base());
      return;
    }
  }
  std::fprintf(stderr,
               "musketeer lock-rank violation: releasing \"%s\" (rank %d) "
               "which the calling thread does not hold\n",
               mutex.name(), static_cast<int>(mutex.rank()));
  std::abort();
}

bool holds(const OrderedMutex& mutex) {
  for (const HeldLock& held : thread_state().held) {
    if (held.mutex == &mutex) return true;
  }
  return false;
}

int held_depth() {
  return static_cast<int>(thread_state().held.size());
}

int thread_peak_depth() { return thread_state().peak; }

#else  // !MUSKETEER_LOCK_RANK

void check_acquire(const OrderedMutex&, std::source_location) {}
void on_release(const OrderedMutex&) {}
bool holds(const OrderedMutex&) { return false; }
int held_depth() { return 0; }
int thread_peak_depth() { return 0; }

#endif

}  // namespace lock_rank

void OrderedMutex::assert_held(std::source_location site) const {
#if defined(MUSKETEER_LOCK_RANK)
  if (!lock_rank::holds(*this)) {
    std::fprintf(stderr,
                 "musketeer lock-rank violation: \"%s\" (rank %d) must be "
                 "held by the calling thread\n  at %s:%u\n",
                 name(), static_cast<int>(rank()), site.file_name(),
                 site.line());
    std::abort();
  }
#else
  static_cast<void>(site);
#endif
}

}  // namespace musketeer::util
