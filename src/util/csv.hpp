// CSV file writer for experiment outputs (EXPERIMENTS.md references the
// generated files; each bench binary can optionally persist its rows).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace musketeer::util {

/// Streaming CSV writer. Opens the file on construction, writes a header
/// row, and appends one row per `row()` call. Throws std::runtime_error on
/// I/O failure (experiment output must not be silently truncated).
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> headers);

  void row(const std::vector<std::string>& cells);

  /// Flushes and closes; also called by the destructor.
  void close();

  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

 private:
  std::ofstream out_;
  std::size_t width_;
};

}  // namespace musketeer::util
