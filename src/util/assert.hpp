// Checked assertions for the musketeer library.
//
// MUSK_ASSERT is active in all build types: the invariants it guards
// (flow conservation, budget balance, capacity feasibility) are cheap
// relative to the solves around them, and a silent violation would
// invalidate every downstream economic property.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace musketeer::util {

[[noreturn]] inline void assert_fail(std::string_view expr, std::string_view file,
                                     int line, std::string_view msg) {
  std::fprintf(stderr, "musketeer assertion failed: %.*s\n  at %.*s:%d\n  %.*s\n",
               static_cast<int>(expr.size()), expr.data(),
               static_cast<int>(file.size()), file.data(), line,
               static_cast<int>(msg.size()), msg.data());
  std::abort();
}

}  // namespace musketeer::util

#define MUSK_ASSERT(expr)                                                      \
  ((expr) ? static_cast<void>(0)                                               \
          : ::musketeer::util::assert_fail(#expr, __FILE__, __LINE__, ""))

#define MUSK_ASSERT_MSG(expr, msg)                                             \
  ((expr) ? static_cast<void>(0)                                               \
          : ::musketeer::util::assert_fail(#expr, __FILE__, __LINE__, (msg)))
