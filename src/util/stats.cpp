#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/assert.hpp"

namespace musketeer::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stdev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double quantile(std::span<const double> xs, double q) {
  MUSK_ASSERT(!xs.empty());
  MUSK_ASSERT(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double min_of(std::span<const double> xs) {
  MUSK_ASSERT(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  MUSK_ASSERT(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double sum(std::span<const double> xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

double gini(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
  if (total <= 0.0) return 0.0;
  // G = (2 * sum_i i*x_i) / (n * sum x) - (n + 1) / n with 1-based ranks.
  double weighted = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    weighted += static_cast<double>(i + 1) * sorted[i];
  }
  const double n = static_cast<double>(sorted.size());
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

double Accumulator::mean() const { return util::mean(values_); }
double Accumulator::stdev() const { return util::stdev(values_); }
double Accumulator::quantile(double q) const {
  return util::quantile(values_, q);
}
double Accumulator::min() const { return util::min_of(values_); }
double Accumulator::max() const { return util::max_of(values_); }
double Accumulator::sum() const { return util::sum(values_); }

}  // namespace musketeer::util
