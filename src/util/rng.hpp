// Deterministic, seedable random number generation.
//
// All stochastic components of the library (topology generators, workload
// generators, bid samplers) take an explicit Rng& so experiments are
// reproducible from a single seed. The generator is xoshiro256++ seeded via
// splitmix64, which is fast, high quality, and has a tiny state that can be
// copied to fork independent streams.
#pragma once

#include <cstdint>
#include <limits>

#include "util/assert.hpp"

namespace musketeer::util {

/// splitmix64 step; used for seeding and as a cheap hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection.
  std::uint64_t uniform(std::uint64_t bound) {
    MUSK_ASSERT(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    MUSK_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform real in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) {
    MUSK_ASSERT(lo <= hi);
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform01() < p; }

  /// Fork an independent stream (for per-worker determinism).
  Rng fork() { return Rng((*this)() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace musketeer::util
