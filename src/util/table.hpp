// Console table printer used by the bench binaries to render the rows of
// each reproduced experiment (aligned, markdown-ish output).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace musketeer::util {

/// Collects rows of stringly-typed cells and prints an aligned table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have the same number of cells as the headers.
  void add_row(std::vector<std::string> cells);

  /// Render to the given stream (stdout by default).
  void print(std::FILE* out = stdout) const;

  /// Render as CSV text (no alignment padding).
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// If the environment variable MUSKETEER_OUT names a directory, writes
/// the table as <dir>/<name>.csv (for archiving bench outputs alongside
/// EXPERIMENTS.md); otherwise does nothing. Returns whether a file was
/// written. Throws on I/O failure when the directory is set but broken.
bool maybe_export_csv(const Table& table, const std::string& name);

/// printf-style helper returning std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Fixed-precision double formatting helpers for table cells.
std::string fmt_double(double v, int precision = 4);
std::string fmt_int(long long v);

}  // namespace musketeer::util
