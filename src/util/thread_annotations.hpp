// Clang thread-safety capability annotations for the Musketeer tree.
//
// These macros expand to Clang's -Wthread-safety attributes when the
// compiler supports them and to nothing everywhere else (gcc builds the
// dev container; clang runs in the CI `thread-safety` job with
// -Werror=thread-safety -Werror=thread-safety-beta). Annotating is not
// optional in the service layer: the musk_lint `unranked-mutex` and
// `unguarded-member` rules require every cross-thread mutex to be a
// util::OrderedMutex and every member grouped under one to carry
// MUSK_GUARDED_BY, so a data race in src/svc/ is a *compile error* on
// the analysis build, not a tsan coin flip.
//
// Conventions (DESIGN.md §11):
//   * a mutex member is declared with the members it guards immediately
//     after it, each tagged MUSK_GUARDED_BY(that_mutex_);
//   * a private helper that assumes a lock is held is suffixed _locked
//     and tagged MUSK_REQUIRES(mutex_) — and calls mutex_.assert_held()
//     so the contract is also checked at runtime under
//     -DMUSKETEER_LOCK_RANK;
//   * public entry points that take a lock internally are tagged
//     MUSK_EXCLUDES(mutex_) so a caller already holding it is rejected
//     at compile time instead of deadlocking.
#pragma once

// Clang has supported the capability attributes since 3.6; gate on the
// attribute itself so any future compiler that grows them picks them up.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MUSK_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#if !defined(MUSK_THREAD_ANNOTATION)
#define MUSK_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability ("mutex", "role", ...).
#define MUSK_CAPABILITY(x) MUSK_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases
/// a capability (OrderedLock / OrderedUniqueLock).
#define MUSK_SCOPED_CAPABILITY MUSK_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with the capability held.
#define MUSK_GUARDED_BY(x) MUSK_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the capability.
#define MUSK_PT_GUARDED_BY(x) MUSK_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capabilities held on entry (and still on exit).
#define MUSK_REQUIRES(...) \
  MUSK_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capabilities (held on exit, not on entry).
#define MUSK_ACQUIRE(...) \
  MUSK_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capabilities (held on entry, not on exit).
#define MUSK_RELEASE(...) \
  MUSK_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define MUSK_TRY_ACQUIRE(...) \
  MUSK_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capabilities (anti-deadlock: the function
/// acquires them itself).
#define MUSK_EXCLUDES(...) MUSK_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define MUSK_RETURN_CAPABILITY(x) MUSK_THREAD_ANNOTATION(lock_returned(x))

/// Assertion that the capability is held (assert_held()).
#define MUSK_ASSERT_CAPABILITY(x) \
  MUSK_THREAD_ANNOTATION(assert_capability(x))

/// Escape hatch: the function body is exempt from analysis. Every use
/// must carry a comment explaining why the analysis cannot see the
/// invariant (the classic case: a condition-variable predicate lambda,
/// which the analysis checks out of context even though the wait
/// re-acquires the lock around every evaluation).
#define MUSK_NO_THREAD_SAFETY_ANALYSIS \
  MUSK_THREAD_ANNOTATION(no_thread_safety_analysis)
