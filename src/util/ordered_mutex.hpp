// Ranked mutex + condition variable: the runtime half of the repo's
// compile-time race protection (util/thread_annotations.hpp is the
// static half).
//
// Every cross-thread mutex in the tree is an OrderedMutex carrying a
// static LockRank from the single documented hierarchy below. Locks on
// one thread must be acquired in strictly *decreasing* rank order; under
// -DMUSKETEER_LOCK_RANK (the asan-ubsan/tsan/chaos presets) a
// thread-local held-rank stack checks every acquisition and aborts on
// any inversion, printing the mutex names, ranks, and *both* acquisition
// sites. Acquiring two locks of the same rank is an inversion too — if
// two peers must ever nest, give them distinct ranks and document the
// order. Without the definition the wrapper is a bare std::mutex: no
// branch, no thread-local, nothing for the optimizer to keep
// (bench/svc_throughput measures the claim and asserts it).
//
// The lock hierarchy (highest rank = acquired first; see DESIGN.md §11
// for the full table and how to add a new lock):
//
//   kService(90)   > RebalanceService epoch pipeline (clear_mutex_)
//   kServer(80)    > SocketServer connection registry
//   kConnection(70)> per-connection write serialization
//   kScheduler(60) > RebalanceService periodic-scheduler wait
//   kNetwork(50)   > the live pcn::Network
//   kJournal(40)   > epoch journal appends
//   kReports(30)   > completed-epoch reports + wait_epochs
//   kBidQueue(20)  > bid intake
//   kExecutor(15)  > svc::ParallelExecutor dispatch (the epoch pipeline
//                    submits work with kService held, so it ranks below
//                    kService; the executor lock is never held while a
//                    task body runs, so tasks may take kFaultRegistry /
//                    kObsRegistry freely)
//   kWatchdog(12)  > RebalanceService watchdog wait (the watchdog thread
//                    parks on its own cv and force-cancels a wedged epoch
//                    through an atomic token — it takes NO other lock
//                    above fault/obs, so it ranks just above them and
//                    below every pipeline lock)
//   kFaultRegistry(10) > util::fault schedule (hooks fire under
//                        everything above, so it must rank low)
//   kObsRegistry(5)    > obs metrics registry (instruments may be
//                        registered from any context — even fault hooks
//                        count events — so it ranks below everything)
//
// Note the discovered order Service > Server: epoch broadcast runs on
// the clearing thread with the epoch lock held and then walks the
// connection registry — the naive "network-facing layers rank above the
// service" guess is exactly the inversion this auditor exists to catch.
#pragma once

#include <condition_variable>
#include <mutex>
#include <source_location>
#include <thread>

#include "util/thread_annotations.hpp"

namespace musketeer::util {

/// Static lock ranks, gapped so a new lock slots in without renumbering.
enum class LockRank : int {
  kService = 90,
  kServer = 80,
  kConnection = 70,
  kScheduler = 60,
  kNetwork = 50,
  kJournal = 40,
  kReports = 30,
  kBidQueue = 20,
  kExecutor = 15,
  kWatchdog = 12,
  kFaultRegistry = 10,
  kObsRegistry = 5,
};

class OrderedMutex;

namespace lock_rank {

/// True when the build carries the rank auditor (-DMUSKETEER_LOCK_RANK).
bool compiled_in();

// Auditor internals (called by OrderedMutex under MUSKETEER_LOCK_RANK).
// check_acquire aborts with both acquisition sites on a rank inversion,
// then pushes the lock; on_release pops it (any held position — a
// unique-lock may release out of LIFO order, which is legal).
void check_acquire(const OrderedMutex& mutex, std::source_location site);
void on_release(const OrderedMutex& mutex);
bool holds(const OrderedMutex& mutex);

/// Locks currently held by the calling thread.
int held_depth();

/// Deepest simultaneous hold this thread ever reached (tests use it to
/// prove a clean epoch actually nested its locks). 0 when not compiled in.
int thread_peak_depth();

}  // namespace lock_rank

/// A std::mutex carrying a static rank and a name for diagnostics.
/// Lock through OrderedLock / OrderedUniqueLock; the raw lock()/unlock()
/// surface exists for them and for condition-variable reacquisition.
class MUSK_CAPABILITY("mutex") OrderedMutex {
 public:
  OrderedMutex(LockRank rank, const char* name) noexcept
      : rank_(rank), name_(name) {}

  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

  void lock(std::source_location site = std::source_location::current())
      MUSK_ACQUIRE() {
#if defined(MUSKETEER_LOCK_RANK)
    // Check + record *before* blocking: if the inversion would deadlock,
    // we abort with the diagnosis instead of hanging.
    lock_rank::check_acquire(*this, site);
#else
    static_cast<void>(site);
#endif
    mutex_.lock();
  }

  void unlock() MUSK_RELEASE() {
    mutex_.unlock();
#if defined(MUSKETEER_LOCK_RANK)
    lock_rank::on_release(*this);
#endif
  }

  /// Runtime counterpart of MUSK_REQUIRES: aborts (under
  /// -DMUSKETEER_LOCK_RANK) when the calling thread does not hold this
  /// mutex. _locked helpers call it so a lock contract broken through a
  /// path the static analysis cannot see still dies loudly.
  void assert_held(
      std::source_location site = std::source_location::current()) const
      MUSK_ASSERT_CAPABILITY(this);

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::mutex mutex_;
  const LockRank rank_;
  const char* const name_;
};

/// std::lock_guard over an OrderedMutex (scoped, non-movable).
class MUSK_SCOPED_CAPABILITY OrderedLock {
 public:
  explicit OrderedLock(
      OrderedMutex& mutex,
      std::source_location site = std::source_location::current())
      MUSK_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock(site);
  }

  ~OrderedLock() MUSK_RELEASE() { mutex_.unlock(); }

  OrderedLock(const OrderedLock&) = delete;
  OrderedLock& operator=(const OrderedLock&) = delete;

 private:
  OrderedMutex& mutex_;
};

/// std::unique_lock over an OrderedMutex: relockable, so OrderedCondVar
/// can release it around a wait and a scheduler can drop it across an
/// epoch. Satisfies BasicLockable for condition_variable_any.
class MUSK_SCOPED_CAPABILITY OrderedUniqueLock {
 public:
  explicit OrderedUniqueLock(
      OrderedMutex& mutex,
      std::source_location site = std::source_location::current())
      MUSK_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock(site);
    owns_ = true;
  }

  // The analysis cannot prove the conditional release in the body, but
  // the runtime invariant is simple: every wait/unlock path re-acquires
  // before scope exit or leaves owns_ false.
  ~OrderedUniqueLock() MUSK_RELEASE() MUSK_NO_THREAD_SAFETY_ANALYSIS {
    if (owns_) mutex_.unlock();
  }

  void lock(std::source_location site = std::source_location::current())
      MUSK_ACQUIRE() {
    mutex_.lock(site);
    owns_ = true;
  }

  void unlock() MUSK_RELEASE() {
    owns_ = false;
    mutex_.unlock();
  }

  bool owns_lock() const { return owns_; }

  OrderedUniqueLock(const OrderedUniqueLock&) = delete;
  OrderedUniqueLock& operator=(const OrderedUniqueLock&) = delete;

 private:
  OrderedMutex& mutex_;
  bool owns_ = false;
};

/// condition_variable_any over OrderedUniqueLock. Waits release the
/// ranked lock and re-acquire it through the audited lock() path, so a
/// wait that would re-acquire out of rank order is caught like any other
/// acquisition. Deadline-free wait() is deliberately absent (the repo
/// lint bans it — every wait must re-check its exit condition on a
/// bounded cadence).
class OrderedCondVar {
 public:
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(OrderedUniqueLock& lock,
                const std::chrono::duration<Rep, Period>& timeout,
                Predicate predicate) {
    return cv_.wait_for(lock, timeout, std::move(predicate));
  }

  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(OrderedUniqueLock& lock, std::stop_token stop,
                const std::chrono::duration<Rep, Period>& timeout,
                Predicate predicate) {
    return cv_.wait_for(lock, std::move(stop), timeout,
                        std::move(predicate));
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace musketeer::util
