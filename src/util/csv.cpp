#include "util/csv.hpp"

#include <stdexcept>

#include "util/assert.hpp"

namespace musketeer::util {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> headers)
    : out_(path), width_(headers.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  MUSK_ASSERT(width_ > 0);
  row(headers);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  MUSK_ASSERT_MSG(cells.size() == width_, "CSV row width mismatch");
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c) out_ << ',';
    out_ << cells[c];
  }
  out_ << '\n';
  if (!out_) throw std::runtime_error("CsvWriter: write failed");
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

CsvWriter::~CsvWriter() { close(); }

}  // namespace musketeer::util
