// Small descriptive-statistics helpers used by the experiment harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace musketeer::util {

/// Arithmetic mean; 0 for an empty range.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 if fewer than two values.
double stdev(std::span<const double> xs);

/// Exact quantile by sorting a copy; q in [0, 1]. Uses the nearest-rank
/// method with linear interpolation between order statistics.
double quantile(std::span<const double> xs, double q);

double median(std::span<const double> xs);

double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);
double sum(std::span<const double> xs);

/// Gini coefficient of a non-negative distribution in [0, 1]; 0 for
/// perfectly equal values, →1 for maximally concentrated. Used to measure
/// channel-imbalance concentration in the PCN experiments.
double gini(std::span<const double> xs);

/// Accumulates a stream of doubles and reports summary statistics.
class Accumulator {
 public:
  void add(double x) { values_.push_back(x); }
  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double mean() const;
  double stdev() const;
  double quantile(double q) const;
  double min() const;
  double max() const;
  double sum() const;
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
};

}  // namespace musketeer::util
