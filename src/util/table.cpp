#include "util/table.hpp"

#include <cstdarg>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace musketeer::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MUSK_ASSERT(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  MUSK_ASSERT_MSG(cells.size() == headers_.size(),
                  "row width must match header width");
  rows_.push_back(std::move(cells));
}

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::fputs("|", out);
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, " %-*s |", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::fputs("\n", out);
  };
  print_row(headers_);
  std::fputs("|", out);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    for (std::size_t i = 0; i < widths[c] + 2; ++i) std::fputc('-', out);
    std::fputc('|', out);
  }
  std::fputs("\n", out);
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_csv() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += row[c];
    }
    out += '\n';
  };
  append_row(headers_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

bool maybe_export_csv(const Table& table, const std::string& name) {
  const char* dir = std::getenv("MUSKETEER_OUT");
  if (dir == nullptr || *dir == '\0') return false;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << table.to_csv();
  if (!out) throw std::runtime_error("write failed: " + path);
  return true;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  MUSK_ASSERT(needed >= 0);
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string fmt_double(double v, int precision) {
  return format("%.*f", precision, v);
}

std::string fmt_int(long long v) { return format("%lld", v); }

}  // namespace musketeer::util
