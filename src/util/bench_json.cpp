#include "util/bench_json.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

namespace musketeer::util {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

BenchReport::~BenchReport() {
  if (written_) return;
  try {
    write();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "bench_json: %s\n", error.what());
  }
}

void BenchReport::config(const std::string& key, const std::string& value) {
  config_.emplace_back(key, "\"" + json_escape(value) + "\"");
}

void BenchReport::config(const std::string& key, const char* value) {
  config(key, std::string(value));
}

void BenchReport::config(const std::string& key, double value) {
  config_.emplace_back(key, json_number(value));
}

void BenchReport::config(const std::string& key, std::int64_t value) {
  config_.emplace_back(key, std::to_string(value));
}

void BenchReport::config(const std::string& key, bool value) {
  config_.emplace_back(key, value ? "true" : "false");
}

void BenchReport::add(const std::string& op, double ns_per_op,
                      std::uint64_t n) {
  results_.push_back(Result{op, ns_per_op, n});
}

void BenchReport::add_seconds(const std::string& op, double seconds,
                              std::uint64_t n) {
  add(op, n == 0 ? 0.0 : seconds * 1e9 / static_cast<double>(n), n);
}

std::string BenchReport::to_json() const {
  std::string out = "{\"bench\": \"" + json_escape(name_) + "\"";
  out += ", \"config\": {";
  for (std::size_t i = 0; i < config_.size(); ++i) {
    if (i) out += ", ";
    out += "\"" + json_escape(config_[i].first) + "\": " + config_[i].second;
  }
  out += "}, \"results\": [";
  for (std::size_t i = 0; i < results_.size(); ++i) {
    if (i) out += ", ";
    const Result& r = results_[i];
    out += "{\"op\": \"" + json_escape(r.op) +
           "\", \"ns_per_op\": " + json_number(r.ns_per_op) +
           ", \"n\": " + std::to_string(r.n) + "}";
  }
  out += "]}\n";
  return out;
}

std::string BenchReport::write() {
  written_ = true;
  const char* dir = std::getenv("MUSKETEER_OUT");
  const std::string path = (dir != nullptr && *dir != '\0')
                               ? std::string(dir) + "/BENCH_" + name_ + ".json"
                               : "BENCH_" + name_ + ".json";
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << to_json();
  if (!out) throw std::runtime_error("write failed: " + path);
  return path;
}

}  // namespace musketeer::util
