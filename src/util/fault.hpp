// Deterministic fault injection for chaos testing the service stack.
//
// A *fault point* is a named place in the code where a failure can be
// provoked: a frame about to hit the socket, an fsync about to be
// issued, the instant between journaling an outcome and settling it.
// Points are compiled in only under -DMUSKETEER_FAULTS (the `chaos`
// preset); without the definition every hook macro expands to nothing,
// so the production build pays zero overhead — not even a branch.
//
// Faults are driven from a *schedule*, parsed from the MUSK_FAULT_SPEC
// environment variable (or configure()):
//
//     MUSK_FAULT_SPEC="seed=42;svc.crash_after_commit@2=crash;wire.client.send=drop"
//
//   entry    := <point>[@<nth>]=<action>[:<arg>]
//   point    := a registered name (see fault::points())
//   nth      := 1-based hit count at which the entry fires once
//               (default 1); hits are counted per point across hooks
//   action   := crash     throw fault::CrashPoint (a simulated kill -9:
//                         catch sites must NOT run graceful cleanup)
//               fail      the guarded operation reports failure
//               drop      the guarded byte buffer is cleared
//               truncate  the guarded byte buffer loses its second half
//               corrupt   one seeded-random byte of the buffer is flipped
//               delay     the hook blocks for <arg> milliseconds
//
// Entries are one-shot and the schedule is explicit, so a chaos run is
// exactly reproducible from its spec string; `seed` only feeds the
// corrupt action's byte choice. All state is process-global and
// mutex-guarded (hooks fire from connection handlers, the scheduler
// thread, and test threads alike).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace musketeer::util::fault {

/// Thrown by a `crash` entry. Models the process dying at the point:
/// catch sites must rethrow it *before* any catch (...) cleanup so the
/// durable state (journal file) looks exactly like a real kill -9.
class CrashPoint : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// True when the build carries the fault hooks (-DMUSKETEER_FAULTS).
bool compiled_in();

/// Replaces the schedule. Throws std::runtime_error on a malformed spec
/// or an unregistered point name. An empty spec clears the schedule.
void configure(const std::string& spec);

/// configure(getenv("MUSK_FAULT_SPEC") or ""). Called lazily by the
/// first hook, so daemons pick the schedule up without wiring.
void configure_from_env();

/// Clears the schedule and every hit counter.
void clear();

/// The active schedule, rendered back to spec form (artifact logging).
std::string schedule_string();

/// Every registered point name (stable order).
std::vector<std::string> points();

/// Times `point` was hit since the last clear()/configure().
std::uint64_t hits(const std::string& point);

// --- hooks (call through the MUSK_FAULT_* macros) ----------------------

/// Counts a hit; fires crash/delay entries scheduled for it.
void hit(const char* point);

/// Counts a hit; true when a `fail` entry fires (crash/delay also honored).
bool should_fail(const char* point);

/// Counts a hit; applies drop/truncate/corrupt to `bytes` when scheduled
/// (crash/delay also honored).
void mutate(const char* point, std::string& bytes);

}  // namespace musketeer::util::fault

#if defined(MUSKETEER_FAULTS)
#define MUSK_FAULT_HIT(point) ::musketeer::util::fault::hit(point)
#define MUSK_FAULT_FAIL(point) ::musketeer::util::fault::should_fail(point)
#define MUSK_FAULT_MUTATE(point, bytes) \
  ::musketeer::util::fault::mutate(point, bytes)
#else
#define MUSK_FAULT_HIT(point) static_cast<void>(0)
#define MUSK_FAULT_FAIL(point) false
#define MUSK_FAULT_MUTATE(point, bytes) static_cast<void>(0)
#endif
