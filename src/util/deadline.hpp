// Cooperative cancellation for the flow solvers.
//
// An epoch that runs long must be stoppable without corrupting the pooled
// solver state, so every solver loop in src/flow checks a shared
// CancelToken at its iteration boundaries via MUSK_CANCEL_POINT. The
// token is "cheap by default": a null token costs one branch, an armed
// token one relaxed atomic load plus (when a deadline is set) a
// steady-clock read per iteration — each iteration already rebuilds an
// O(m) residual network, so the check is noise (bench/deadline_overhead
// gates it at < 1.03x solver ns/op).
//
// Firing is one-way and lock-free: cancel() may be called from any thread
// (the service watchdog force-cancels a wedged epoch this way), and every
// in-flight component task sharing the token observes it at its next
// cancel point and unwinds with SolveCancelled. arm() re-arms the token
// for the next epoch and must only be called while no solve is in flight.
//
// This header is the sanctioned home for cancellation-deadline clock
// reads, alongside obs::Timer for measurement — musk_lint's adhoc-timing
// and solver-timing rules ban steady_clock anywhere else in src/ and ban
// hand-rolled timeout loops in src/flow entirely (DESIGN.md §14).
#pragma once

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace musketeer::util {

/// Thrown by MUSK_CANCEL_POINT when the governing token has fired.
/// Solvers let it propagate: every cancel point sits at an iteration
/// boundary, so the workspace holds no half-applied push when it throws.
class SolveCancelled : public std::runtime_error {
 public:
  SolveCancelled() : std::runtime_error("solve cancelled") {}
};

/// A steady-clock expiry point, or "never". Value type; comparison with
/// now() happens in expired().
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires.
  Deadline() = default;

  /// Expires `budget` from now; a non-positive budget is already expired
  /// (every cancel point fires immediately — used by tests).
  static Deadline after(std::chrono::milliseconds budget) {
    Deadline d;
    d.armed_ = true;
    d.at_ = Clock::now() + budget;
    return d;
  }

  static Deadline never() { return {}; }

  bool armed() const { return armed_; }

  bool expired() const { return armed_ && Clock::now() >= at_; }

 private:
  bool armed_ = false;
  Clock::time_point at_{};
};

/// Shared cancellation state for one solve (or one epoch's worth of
/// component solves). poll() is what MUSK_CANCEL_POINT calls: it latches
/// deadline expiry into the atomic flag, so after the first expired poll
/// every other thread sees the cancellation from the flag alone.
class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(Deadline deadline) : deadline_(deadline) {}

  /// Re-arms for a fresh solve: clears the flag and installs `deadline`.
  /// Caller contract: no solve may be polling this token concurrently
  /// (the deadline fields are deliberately plain — only the flag is
  /// shared with in-flight solvers).
  void arm(Deadline deadline) {
    deadline_ = deadline;
    trip_countdown_.store(-1, std::memory_order_relaxed);
    cancelled_.store(false, std::memory_order_relaxed);
  }

  /// Fires the token. Safe from any thread at any time (the watchdog's
  /// force-cancel path); idempotent.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Test hook: fire on the nth poll (n >= 1) regardless of the
  /// deadline, so cancellation tests hit deterministic iteration
  /// boundaries instead of racing a clock.
  void trip_after(long long polls) {
    trip_countdown_.store(polls, std::memory_order_relaxed);
  }

  /// One cancellation check; true once the token has fired.
  bool poll() {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (trip_countdown_.load(std::memory_order_relaxed) >= 0 &&
        trip_countdown_.fetch_sub(1, std::memory_order_relaxed) <= 1) {
      cancel();
      return true;
    }
    if (deadline_.expired()) {
      cancel();
      return true;
    }
    return false;
  }

 private:
  std::atomic<bool> cancelled_{false};
  /// -1 = inert; otherwise polls remaining until a forced trip.
  std::atomic<long long> trip_countdown_{-1};
  Deadline deadline_{};
};

}  // namespace musketeer::util

/// The solver-side cancellation check. `token` is a util::CancelToken*
/// and may be null (the common, overhead-free case). Placed only at
/// iteration boundaries — after a full cycle cancellation / pivot /
/// peel — so unwinding never leaves scratch half-written.
#define MUSK_CANCEL_POINT(token)                                     \
  do {                                                               \
    ::musketeer::util::CancelToken* musk_cancel_tok_ = (token);      \
    if (musk_cancel_tok_ != nullptr && musk_cancel_tok_->poll()) {   \
      throw ::musketeer::util::SolveCancelled();                     \
    }                                                                \
  } while (0)
