// Machine-readable bench output: every bench/* binary builds one
// BenchReport and emits BENCH_<name>.json next to its human-readable
// tables, so CI can archive and diff benchmark numbers across runs.
//
// Shape:
//
//   {"bench": "e4_throughput",
//    "config": {"seeds": 5, "short_mode": true},
//    "results": [{"op": "recovery/m3", "ns_per_op": 1.23e6, "n": 1000}]}
//
// The file goes to $MUSKETEER_OUT/BENCH_<name>.json when the variable
// names a directory (the CI bench job sets it and uploads the
// directory), else to the current working directory — a bench run
// always leaves a machine-readable record.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace musketeer::util {

class BenchReport {
 public:
  /// `name` becomes the file stem: BENCH_<name>.json.
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  /// Writes the report on destruction if write() was never called
  /// (swallowing I/O errors — destructors don't throw; call write()
  /// explicitly to observe failure).
  ~BenchReport();

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  /// Records a config key (emitted as a JSON string / number / bool).
  void config(const std::string& key, const std::string& value);
  void config(const std::string& key, const char* value);
  void config(const std::string& key, double value);
  void config(const std::string& key, std::int64_t value);
  void config(const std::string& key, bool value);

  /// Records one measured operation: `n` repetitions at `ns_per_op`
  /// nanoseconds each.
  void add(const std::string& op, double ns_per_op, std::uint64_t n);

  /// Convenience: `seconds` of wall clock spent on `n` repetitions.
  void add_seconds(const std::string& op, double seconds, std::uint64_t n);

  /// Serializes the report (stable field order, %.17g numbers).
  std::string to_json() const;

  /// Writes BENCH_<name>.json to $MUSKETEER_OUT (if set) or the cwd
  /// and returns the path. Throws on I/O failure.
  std::string write();

 private:
  struct Result {
    std::string op;
    double ns_per_op;
    std::uint64_t n;
  };

  std::string name_;
  std::vector<std::pair<std::string, std::string>> config_;  ///< key, raw JSON
  std::vector<Result> results_;
  bool written_ = false;
};

}  // namespace musketeer::util
