#include "util/fault.hpp"

#include <poll.h>

#include <cstdlib>
#include <sstream>
#include <unordered_map>

#include "util/ordered_mutex.hpp"
#include "util/thread_annotations.hpp"

namespace musketeer::util::fault {
namespace {

// The registry is fixed at compile time: a schedule naming an unknown
// point is a spec typo, and the chaos suite asserts every one of these
// is exercised. Keep in sync with DESIGN.md §10.3.
constexpr const char* kPoints[] = {
    "wire.client.send",        // client frame bytes before write()
    "wire.server.send",        // server frame bytes before write()
    "sock.connect",            // client connect(2) about to be issued
    "journal.write",           // encoded journal record before write()
    "journal.fsync",           // fsync(2) of the journal fd
    "svc.crash_after_begin",   // epoch begun, locks held, nothing journaled
    "svc.crash_before_commit", // outcome computed, OUTCOME not yet durable
    "svc.crash_after_commit",  // OUTCOME durable, settle not yet applied
    "svc.crash_mid_settle",    // settle applied, SETTLED not yet journaled
    "deadline.expire",         // epoch clear attempt armed its deadline
    "watchdog.fire",           // watchdog about to force-cancel an epoch
    "degrade.fail",            // degradation rung about to run
    "segment.roll",            // journal about to open a fresh segment
    "snapshot.write",          // encoded snapshot bytes before tmp write
    "snapshot.rename",         // snapshot tmp written, rename not yet issued
    "compact.unlink",          // compaction about to unlink a segment
    "disk.full",               // journal/snapshot write hits simulated ENOSPC
};

enum class Action { kCrash, kFail, kDrop, kTruncate, kCorrupt, kDelay };

struct Entry {
  Action action{};
  std::uint64_t nth = 1;   // fires on the nth hit of the point
  std::uint64_t arg = 0;   // delay milliseconds
  bool fired = false;
};

struct State {
  /// Ranked last: hooks fire from under every other lock in the tree
  /// (journal appends, connection writes, the epoch pipeline).
  OrderedMutex mu{LockRank::kFaultRegistry, "fault-registry"};
  std::uint64_t seed MUSK_GUARDED_BY(mu) = 1;
  std::unordered_map<std::string, std::vector<Entry>> entries
      MUSK_GUARDED_BY(mu);
  std::unordered_map<std::string, std::uint64_t> counters
      MUSK_GUARDED_BY(mu);
  std::string spec MUSK_GUARDED_BY(mu);
  bool env_loaded MUSK_GUARDED_BY(mu) = false;
};

State& state() {
  static State s;
  return s;
}

bool known_point(const std::string& name) {
  for (const char* p : kPoints) {
    if (name == p) return true;
  }
  return false;
}

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw std::runtime_error("MUSK_FAULT_SPEC \"" + spec + "\": " + why);
}

// splitmix64: deterministic byte/offset choice for `corrupt` without
// dragging util::Rng into this leaf library.
std::uint64_t mix(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void parse_locked(State& s, const std::string& spec) MUSK_REQUIRES(s.mu) {
  s.mu.assert_held();
  s.entries.clear();
  s.counters.clear();
  s.seed = 1;
  s.spec = spec;
  std::istringstream in(spec);
  std::string item;
  while (std::getline(in, item, ';')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) bad_spec(spec, "entry \"" + item + "\" has no '='");
    std::string lhs = item.substr(0, eq);
    const std::string rhs = item.substr(eq + 1);
    if (lhs == "seed") {
      s.seed = std::strtoull(rhs.c_str(), nullptr, 10);
      continue;
    }
    Entry e;
    const auto at = lhs.find('@');
    if (at != std::string::npos) {
      e.nth = std::strtoull(lhs.c_str() + at + 1, nullptr, 10);
      if (e.nth == 0) bad_spec(spec, "\"" + lhs + "\": @nth is 1-based");
      lhs.resize(at);
    }
    if (!known_point(lhs)) bad_spec(spec, "unknown point \"" + lhs + "\"");
    std::string action = rhs;
    const auto colon = rhs.find(':');
    if (colon != std::string::npos) {
      action = rhs.substr(0, colon);
      e.arg = std::strtoull(rhs.c_str() + colon + 1, nullptr, 10);
    }
    if (action == "crash") e.action = Action::kCrash;
    else if (action == "fail") e.action = Action::kFail;
    else if (action == "drop") e.action = Action::kDrop;
    else if (action == "truncate") e.action = Action::kTruncate;
    else if (action == "corrupt") e.action = Action::kCorrupt;
    else if (action == "delay") e.action = Action::kDelay;
    else bad_spec(spec, "unknown action \"" + action + "\"");
    s.entries[lhs].push_back(e);
  }
}

void ensure_env_locked(State& s) MUSK_REQUIRES(s.mu) {
  s.mu.assert_held();
  if (s.env_loaded) return;
  s.env_loaded = true;
  const char* spec = std::getenv("MUSK_FAULT_SPEC");
  if (spec != nullptr && *spec != '\0') parse_locked(s, spec);
}

// Advances the point's hit counter and returns the entry (if any) that
// fires on this hit. Entries are one-shot.
Entry* advance_locked(State& s, const char* point) MUSK_REQUIRES(s.mu) {
  ensure_env_locked(s);
  const std::uint64_t n = ++s.counters[point];
  auto it = s.entries.find(point);
  if (it == s.entries.end()) return nullptr;
  for (Entry& e : it->second) {
    if (!e.fired && e.nth == n) {
      e.fired = true;
      return &e;
    }
  }
  return nullptr;
}

[[noreturn]] void crash(const char* point) {
  throw CrashPoint(std::string("simulated crash at fault point ") + point);
}

void delay_ms(std::uint64_t ms) {
  // poll(2) with no fds is the sanctioned bounded block (see musk_lint
  // naked-sleep); injected delays are short and test-only.
  ::poll(nullptr, 0, static_cast<int>(ms));
}

}  // namespace

bool compiled_in() {
#if defined(MUSKETEER_FAULTS)
  return true;
#else
  return false;
#endif
}

void configure(const std::string& spec) {
  State& s = state();
  const OrderedLock lock(s.mu);
  parse_locked(s, spec);
  s.env_loaded = true;  // explicit schedule wins over the environment
}

void configure_from_env() {
  State& s = state();
  const OrderedLock lock(s.mu);
  s.env_loaded = false;
  ensure_env_locked(s);
}

void clear() {
  State& s = state();
  const OrderedLock lock(s.mu);
  s.entries.clear();
  s.counters.clear();
  s.spec.clear();
  s.seed = 1;
  s.env_loaded = true;
}

std::string schedule_string() {
  State& s = state();
  const OrderedLock lock(s.mu);
  return s.spec;
}

std::vector<std::string> points() {
  return {std::begin(kPoints), std::end(kPoints)};
}

std::uint64_t hits(const std::string& point) {
  State& s = state();
  const OrderedLock lock(s.mu);
  const auto it = s.counters.find(point);
  return it == s.counters.end() ? 0 : it->second;
}

void hit(const char* point) {
  State& s = state();
  std::uint64_t delay = 0;
  {
    const OrderedLock lock(s.mu);
    Entry* e = advance_locked(s, point);
    if (e == nullptr) return;
    switch (e->action) {
      case Action::kCrash:
        crash(point);
      case Action::kDelay:
        delay = e->arg;
        break;
      default:
        break;  // buffer/failure actions are meaningless on a bare hit
    }
  }
  if (delay > 0) delay_ms(delay);
}

bool should_fail(const char* point) {
  State& s = state();
  std::uint64_t delay = 0;
  bool fail = false;
  {
    const OrderedLock lock(s.mu);
    Entry* e = advance_locked(s, point);
    if (e != nullptr) {
      switch (e->action) {
        case Action::kCrash:
          crash(point);
        case Action::kFail:
          fail = true;
          break;
        case Action::kDelay:
          delay = e->arg;
          break;
        default:
          break;
      }
    }
  }
  if (delay > 0) delay_ms(delay);
  return fail;
}

void mutate(const char* point, std::string& bytes) {
  State& s = state();
  std::uint64_t delay = 0;
  {
    const OrderedLock lock(s.mu);
    Entry* e = advance_locked(s, point);
    if (e != nullptr) {
      switch (e->action) {
        case Action::kCrash:
          crash(point);
        case Action::kDrop:
          bytes.clear();
          break;
        case Action::kTruncate:
          bytes.resize(bytes.size() / 2);
          break;
        case Action::kCorrupt:
          if (!bytes.empty()) {
            std::uint64_t r = s.seed;
            const std::uint64_t off = mix(r) % bytes.size();
            // Flip a low bit so the byte always changes.
            bytes[off] = static_cast<char>(
                static_cast<unsigned char>(bytes[off]) ^
                (1u << (mix(r) % 8)));
          }
          break;
        case Action::kDelay:
          delay = e->arg;
          break;
        default:
          break;
      }
    }
  }
  if (delay > 0) delay_ms(delay);
}

}  // namespace musketeer::util::fault
